"""Phase-level cost-attribution profiler.

Where metrics (:mod:`repro.obs.metrics`) count *how much* work a run
did and the flight recorder (:mod:`repro.obs.flight`) records *what
happened* inside one solve, the profiler answers *where the wall time
went*: it attributes self time and operation counts (Newton iterations,
table evaluations, linalg solves, cache hits) to a stable phase
taxonomy

    solver phase  ->  region kind  ->  stage class / arc

via explicit instrumentation frames in ``core`` (QWM phases 1-3),
``linalg``/``matching`` (Sherman-Morrison vs dense LU), ``devices``
(characterization), ``spice`` (both transient engines), ``analysis``
(per-arc frames, serial and parallel backends) and ``resilience``
(escalation rungs).

A frame is a phase label pushed onto a thread-local stack::

    with profile_phase("qwm.region", tag="crossing") as ph:
        ...
        ph.count("newton_iterations", region_iterations)

On exit the frame records one **cell** keyed by the full label path
(``("sta.arc:nand3", "engine.evaluate:nand3", "qwm.phase3",
"qwm.region:crossing")``) holding exclusive (self) seconds, a call
count and the accumulated operation counts.  Counts are flushed once
per frame — never per inner-loop iteration — which is the discipline
lint rule ``SOL006-hot-loop-instrumentation`` enforces.

Like the flight recorder the profiler is process-wide, disabled by
default, and every instrumentation point degrades to a single
attribute check when off.  The cell ledger is deterministic and
mergeable: per-worker ledgers drained by the process backend are added
cell-wise (addition over sorted keys commutes), so a process-pool run
reports operation counts bit-for-bit equal to the serial run.

Exports: :func:`to_collapsed` (Brendan Gregg collapsed stacks),
:func:`to_speedscope` (speedscope JSON file format),
:func:`summarize_profile` / :func:`render_profile` (self/cumulative
tables + hottest cells) and :func:`phase_self_seconds` (the ``phases``
section embedded into the benchmark artifacts for ``repro
bench-diff`` attribution).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "ProfileConfig", "PhaseProfiler", "profiler", "configure_profile",
    "disable_profile", "profile_phase", "profile_add",
    "to_collapsed", "to_speedscope", "export_speedscope",
    "summarize_profile", "render_profile", "phase_self_seconds",
]

#: Ledger format tag (bumped on incompatible cell-shape changes).
LEDGER_FORMAT = "repro-phase-profile/1"


@dataclass
class ProfileConfig:
    """Controls for the phase profiler.

    Attributes:
        enabled: master switch.  When False (the default) every
            instrumentation frame is a single attribute check.
        max_cells: cap on distinct (path) cells retained; cells beyond
            the cap are dropped and counted, so a pathological label
            cardinality cannot grow the ledger without bound.
    """

    enabled: bool = False
    max_cells: int = 4096

    def __post_init__(self) -> None:
        if self.max_cells < 1:
            raise ValueError("max_cells must be >= 1")


class _Cell:
    """Accumulated cost of one phase path."""

    __slots__ = ("self_seconds", "calls", "ops")

    def __init__(self) -> None:
        self.self_seconds = 0.0
        self.calls = 0
        self.ops: Dict[str, float] = {}


class _NoopPhase:
    """Shared do-nothing frame returned when profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopPhase":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def count(self, op: str, amount: float = 1.0) -> None:
        return None


NOOP_PHASE = _NoopPhase()


class _PhaseFrame:
    """One live phase frame (context manager)."""

    __slots__ = ("_profiler", "path", "_ops", "_t0", "child_seconds")

    def __init__(self, prof: "PhaseProfiler", path: Tuple[str, ...]):
        self._profiler = prof
        self.path = path
        self._ops: Dict[str, float] = {}
        self.child_seconds = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "_PhaseFrame":
        self._profiler._push(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        elapsed = time.perf_counter() - self._t0
        self._profiler._pop(self, elapsed)

    def count(self, op: str, amount: float = 1.0) -> None:
        """Accumulate an operation count, flushed once at frame exit."""
        self._ops[op] = self._ops.get(op, 0) + amount


class PhaseProfiler:
    """Thread-safe phase-path ledger with deterministic merging.

    Frames nest per thread (thread-local stacks), so concurrent thread
    workers attribute correctly without sharing state on the hot path;
    the ledger itself takes one lock per frame *exit*, never per
    operation counted.
    """

    def __init__(self, config: Optional[ProfileConfig] = None):
        self.config = config or ProfileConfig()
        #: Fast-path switch (plain attribute, mirrors ``Tracer.enabled``).
        self.enabled = self.config.enabled
        self._lock = threading.Lock()
        self._cells: Dict[Tuple[str, ...], _Cell] = {}
        self._dropped = 0
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Frame lifecycle
    # ------------------------------------------------------------------
    def _stack(self) -> List[_PhaseFrame]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def phase(self, name: str, tag: Optional[str] = None) -> _PhaseFrame:
        """Open a phase frame (``name:tag`` when a tag is given)."""
        label = f"{name}:{tag}" if tag else name
        stack = self._stack()
        parent = stack[-1].path if stack else ()
        return _PhaseFrame(self, parent + (label,))

    def _push(self, frame: _PhaseFrame) -> None:
        self._stack().append(frame)

    def _pop(self, frame: _PhaseFrame, elapsed: float) -> None:
        stack = self._stack()
        if stack and stack[-1] is frame:
            stack.pop()
        if stack:
            stack[-1].child_seconds += elapsed
        self_seconds = elapsed - frame.child_seconds
        if self_seconds < 0.0:
            self_seconds = 0.0
        self._record(frame.path, self_seconds, 1, frame._ops)

    def add(self, op: str, amount: float = 1.0,
            root: str = "unattributed") -> None:
        """Attribute an operation count to the current thread's frame.

        Outside any frame the count lands on the single-element path
        ``(root,)`` so it is never silently lost.
        """
        stack = getattr(self._local, "stack", None)
        path = stack[-1].path if stack else (root,)
        self._record(path, 0.0, 0, {op: amount})

    def _record(self, path: Tuple[str, ...], self_seconds: float,
                calls: int, ops: Dict[str, float]) -> None:
        with self._lock:
            cell = self._cells.get(path)
            if cell is None:
                if len(self._cells) >= self.config.max_cells:
                    self._dropped += 1
                    return
                cell = self._cells[path] = _Cell()
            cell.self_seconds += self_seconds
            cell.calls += calls
            for op, amount in ops.items():
                cell.ops[op] = cell.ops.get(op, 0) + amount

    # ------------------------------------------------------------------
    # Serialization / merging
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """The ledger as a JSON-serializable dict (cells sorted by path)."""
        with self._lock:
            cells = [{"path": list(path),
                      "self_seconds": cell.self_seconds,
                      "calls": cell.calls,
                      "ops": {op: cell.ops[op]
                              for op in sorted(cell.ops)}}
                     for path, cell in sorted(self._cells.items())]
            return {"format": LEDGER_FORMAT, "cells": cells,
                    "dropped_cells": self._dropped}

    def drain(self) -> Dict[str, Any]:
        """Snapshot the ledger and reset it atomically.

        The process backend drains the worker's ledger after every
        stage task and ships the delta back with the task payload, so
        the parent can merge per-task contributions deterministically.
        """
        with self._lock:
            snapshot = {"format": LEDGER_FORMAT,
                        "cells": [{"path": list(path),
                                   "self_seconds": cell.self_seconds,
                                   "calls": cell.calls,
                                   "ops": {op: cell.ops[op]
                                           for op in sorted(cell.ops)}}
                                  for path, cell
                                  in sorted(self._cells.items())],
                        "dropped_cells": self._dropped}
            self._cells = {}
            self._dropped = 0
            return snapshot

    def merge(self, payload: Dict[str, Any]) -> None:
        """Add a serialized ledger into this one (cell-wise addition).

        Addition over sorted keys is commutative and associative, so
        the merged totals are independent of worker scheduling order —
        the property the parallel-determinism tests pin down.
        """
        for cell in payload.get("cells", ()):
            self._record(tuple(cell["path"]),
                         float(cell.get("self_seconds", 0.0)),
                         int(cell.get("calls", 0)),
                         cell.get("ops", {}))
        with self._lock:
            self._dropped += int(payload.get("dropped_cells", 0))

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"cells": len(self._cells), "dropped": self._dropped}


#: The process-wide profiler; disabled until ``configure_profile``.
_PROFILER = PhaseProfiler(ProfileConfig(enabled=False))


def profiler() -> PhaseProfiler:
    """The current process-wide phase profiler."""
    return _PROFILER


def configure_profile(config: ProfileConfig) -> PhaseProfiler:
    """Install a fresh profiler for ``config`` and return it."""
    global _PROFILER
    _PROFILER = PhaseProfiler(config)
    return _PROFILER


def disable_profile() -> PhaseProfiler:
    """Restore the default disabled profiler."""
    return configure_profile(ProfileConfig(enabled=False))


# ----------------------------------------------------------------------
# Hot-path helpers — one attribute check when profiling is disabled.
# ----------------------------------------------------------------------
def profile_phase(name: str, tag: Optional[str] = None):
    """Open a phase frame on the current profiler (no-op when off)."""
    prof = _PROFILER
    if not prof.enabled:
        return NOOP_PHASE
    return prof.phase(name, tag)


def profile_add(op: str, amount: float = 1.0,
                root: str = "unattributed") -> None:
    """Attribute an operation count to the current frame (no-op when off)."""
    prof = _PROFILER
    if prof.enabled:
        prof.add(op, amount, root=root)


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def _ledger_cells(ledger: Any) -> List[Dict[str, Any]]:
    if isinstance(ledger, PhaseProfiler):
        ledger = ledger.to_json()
    return list(ledger.get("cells", ()))


def summarize_profile(ledger: Any) -> Dict[str, Any]:
    """Aggregate a ledger into self/cumulative frame rows + hot cells.

    Per frame label: *self* is the sum of exclusive seconds over every
    cell whose path ends in that label; *cumulative* sums the exclusive
    seconds of every cell whose path contains it (each cell counted
    once).  Accepts a :class:`PhaseProfiler` or a ``to_json`` dict.
    """
    cells = _ledger_cells(ledger)
    self_by_frame: Dict[str, float] = {}
    cum_by_frame: Dict[str, float] = {}
    calls_by_frame: Dict[str, int] = {}
    ops_by_frame: Dict[str, Dict[str, float]] = {}
    total = 0.0
    for cell in cells:
        path = cell["path"]
        seconds = float(cell.get("self_seconds", 0.0))
        total += seconds
        leaf = path[-1]
        self_by_frame[leaf] = self_by_frame.get(leaf, 0.0) + seconds
        calls_by_frame[leaf] = (calls_by_frame.get(leaf, 0)
                                + int(cell.get("calls", 0)))
        ops = ops_by_frame.setdefault(leaf, {})
        for op, amount in cell.get("ops", {}).items():
            ops[op] = ops.get(op, 0) + amount
        for frame in dict.fromkeys(path):
            cum_by_frame[frame] = cum_by_frame.get(frame, 0.0) + seconds
    frames = [{"frame": frame,
               "self_seconds": self_by_frame.get(frame, 0.0),
               "cum_seconds": cum_by_frame[frame],
               "calls": calls_by_frame.get(frame, 0),
               "ops": {op: ops_by_frame.get(frame, {})[op]
                       for op in sorted(ops_by_frame.get(frame, {}))}}
              for frame in sorted(cum_by_frame)]
    frames.sort(key=lambda row: (-row["self_seconds"], row["frame"]))
    hot = sorted(cells, key=lambda c: (-float(c.get("self_seconds", 0.0)),
                                       tuple(c["path"])))
    return {"total_seconds": total, "frames": frames, "cells": hot,
            "dropped_cells": int(
                ledger.get("dropped_cells", 0)
                if isinstance(ledger, dict) else 0)}


def phase_self_seconds(ledger: Any) -> Dict[str, float]:
    """Frame label -> exclusive seconds (the bench ``phases`` section)."""
    summary = summarize_profile(ledger)
    return {row["frame"]: row["self_seconds"]
            for row in summary["frames"] if row["calls"] > 0
            or row["self_seconds"] > 0.0 or row["ops"]}


def render_profile(summary: Dict[str, Any], top: int = 10) -> str:
    """Render :func:`summarize_profile` output as a text report."""
    lines = ["phase profile", "============="]
    total = summary["total_seconds"]
    lines.append(f"total attributed: {total * 1e3:.3f} ms")
    lines.append("")
    lines.append(f"{'phase':<42} {'self':>10} {'cum':>10} {'calls':>8}")
    lines.append("-" * 72)
    for row in summary["frames"]:
        lines.append(
            f"{row['frame']:<42} {row['self_seconds'] * 1e3:>8.3f}ms "
            f"{row['cum_seconds'] * 1e3:>8.3f}ms {row['calls']:>8}")
        for op, amount in row["ops"].items():
            lines.append(f"{'':<42}   {op} = {amount:g}")
    lines.append("")
    lines.append(f"hottest cells (top {top})")
    lines.append("-" * 72)
    shown = summary["cells"][:top]
    if not shown:
        lines.append("  (no cells recorded)")
    for cell in shown:
        path = "/".join(cell["path"])
        lines.append(f"  {float(cell['self_seconds']) * 1e3:>8.3f}ms  "
                     f"{path}")
    if summary.get("dropped_cells"):
        lines.append(f"  ... {summary['dropped_cells']} cell(s) dropped "
                     "(max_cells cap)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Flame-graph exports
# ----------------------------------------------------------------------
def to_collapsed(ledger: Any) -> str:
    """Collapsed-stack format (``a;b;c <microseconds>`` per line).

    Feed to any Brendan Gregg-style flamegraph tool; weights are
    integer microseconds of exclusive time.
    """
    lines = []
    for cell in _ledger_cells(ledger):
        micros = int(round(float(cell.get("self_seconds", 0.0)) * 1e6))
        lines.append(";".join(cell["path"]) + f" {micros}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_speedscope(ledger: Any, name: str = "repro phase profile"
                  ) -> Dict[str, Any]:
    """The ledger as a speedscope JSON document (sampled profile).

    Each cell becomes one sample whose stack is the phase path and
    whose weight is the cell's exclusive seconds; open the file at
    https://www.speedscope.app or with ``speedscope <file>``.
    """
    cells = _ledger_cells(ledger)
    frame_index: Dict[str, int] = {}
    frames: List[Dict[str, str]] = []
    samples: List[List[int]] = []
    weights: List[float] = []
    for cell in cells:
        stack = []
        for label in cell["path"]:
            if label not in frame_index:
                frame_index[label] = len(frames)
                frames.append({"name": label})
            stack.append(frame_index[label])
        samples.append(stack)
        weights.append(float(cell.get("self_seconds", 0.0)))
    total = sum(weights)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "exporter": "repro.obs.profile",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [{
            "type": "sampled",
            "name": name,
            "unit": "seconds",
            "startValue": 0,
            "endValue": total,
            "samples": samples,
            "weights": weights,
        }],
    }


def export_speedscope(ledger: Any, path: str,
                      name: str = "repro phase profile") -> str:
    """Write :func:`to_speedscope` output to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_speedscope(ledger, name=name), handle, indent=1)
        handle.write("\n")
    return path
