"""Hierarchical tracing: spans, the trace buffer and exporters.

A *span* is a named, timed region of execution with free-form
attributes.  Spans nest: entering a span pushes it on a thread-local
stack, so a span finished while another is open records that span as
its parent.  Finished spans land in a bounded, thread-safe buffer that
exports as plain JSON or as Chrome ``trace_event`` format (load the
file at ``chrome://tracing`` or https://ui.perfetto.dev).

The tracer never raises from the hot path: when disabled, ``span()``
returns a shared stateless no-op context manager.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.sinks import NullSink, Sink


@dataclass
class SpanRecord:
    """One finished span.

    Attributes:
        span_id: unique id within this tracer (monotonic).
        parent_id: id of the enclosing span, or None for roots.
        name: span name, dot-qualified (``"qwm.region"``).
        start: start instant on the tracer's clock [s].
        duration: elapsed wall time [s].
        attrs: free-form attributes attached at entry or via ``set``.
        thread: OS thread ident the span ran on.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    duration: float
    attrs: Dict[str, object] = field(default_factory=dict)
    thread: int = 0

    def to_json(self) -> dict:
        return {"id": self.span_id, "parent": self.parent_id,
                "name": self.name, "start": self.start,
                "duration": self.duration, "attrs": dict(self.attrs),
                "thread": self.thread}


class _NoopSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """An open span; created by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id",
                 "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = -1
        self.parent_id: Optional[int] = None
        self._start = 0.0

    def set(self, **attrs) -> None:
        """Attach or overwrite attributes while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_LiveSpan":
        self._tracer._enter(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        duration = time.perf_counter() - self._start
        self._tracer._finish(self, duration)
        return False


class Tracer:
    """Thread-safe in-memory span recorder.

    Args:
        enabled: record spans at all (False = every ``span()`` call
            returns the shared no-op).
        limit: maximum retained records; beyond it spans are dropped
            (the drop count is reported by :meth:`stats`).
        sink: live sink receiving one event per finished span.
    """

    def __init__(self, enabled: bool = True, limit: int = 100_000,
                 sink: Optional[Sink] = None):
        self.enabled = enabled
        self.limit = limit
        self.sink = sink or NullSink()
        self._emit_live = not isinstance(self.sink, NullSink)
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._dropped = 0
        self._next_id = 0
        self._stacks = threading.local()
        #: perf_counter offset so exported timestamps start near zero.
        self._t0 = time.perf_counter()

    # ------------------------------------------------------------------
    def span(self, name: str, attrs: Optional[dict] = None) -> _LiveSpan:
        """Open a span (use as a context manager)."""
        if not self.enabled:
            return NOOP_SPAN  # type: ignore[return-value]
        return _LiveSpan(self, name, dict(attrs) if attrs else {})

    def _stack(self) -> list:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    def _enter(self, span: _LiveSpan) -> None:
        stack = self._stack()
        span.parent_id = stack[-1].span_id if stack else None
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
        stack.append(span)

    def _finish(self, span: _LiveSpan, duration: float) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # tolerate out-of-order exits
            stack.remove(span)
        record = SpanRecord(
            span_id=span.span_id, parent_id=span.parent_id,
            name=span.name, start=span._start - self._t0,
            duration=duration, attrs=span.attrs,
            thread=threading.get_ident())
        dropped = False
        with self._lock:
            if len(self._records) < self.limit:
                self._records.append(record)
            else:
                self._dropped += 1
                dropped = True
        if dropped:
            # Lazy import (repro.obs imports this module); a silently
            # truncated trace must at least show up in the metrics.
            from repro.obs import inc

            inc("obs.trace.dropped")
        if self._emit_live:
            self.sink.emit("span", record.to_json())

    # ------------------------------------------------------------------
    def records(self) -> List[SpanRecord]:
        """Snapshot of the finished spans (copy)."""
        with self._lock:
            return list(self._records)

    def stats(self) -> dict:
        with self._lock:
            return {"recorded": len(self._records),
                    "dropped": self._dropped}

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._dropped = 0

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_json(self) -> List[dict]:
        """All finished spans as plain dicts."""
        return [r.to_json() for r in self.records()]

    def to_chrome(self) -> dict:
        """Chrome ``trace_event`` document (complete 'X' events)."""
        pid = os.getpid()
        events = []
        for r in self.records():
            events.append({
                "ph": "X", "name": r.name, "cat": r.name.split(".")[0],
                "ts": r.start * 1e6, "dur": r.duration * 1e6,
                "pid": pid, "tid": r.thread,
                "args": {k: _jsonable(v) for k, v in r.attrs.items()},
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome(self, path: str) -> str:
        """Write the Chrome trace document to ``path``."""
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle)
        return path


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# ----------------------------------------------------------------------
# Tree rendering (the CLI `repro stats` wall-time tree)
# ----------------------------------------------------------------------
def format_span_tree(records: List[SpanRecord], indent: int = 2,
                     dropped: int = 0) -> str:
    """Render finished spans as an aggregated wall-time tree.

    Sibling spans with the same name are merged into one line with a
    ``xN`` multiplicity and summed durations, which keeps per-region
    traces readable (``qwm.region x14``).  ``dropped`` is the tracer's
    drop count (:meth:`Tracer.stats`); when non-zero the tree ends with
    an explicit truncation line so a capped buffer is never mistaken
    for a complete trace.
    """
    children: Dict[Optional[int], List[SpanRecord]] = {}
    for record in records:
        children.setdefault(record.parent_id, []).append(record)

    lines: List[str] = []

    def walk(parent_ids: List[Optional[int]], depth: int) -> None:
        rows: List[SpanRecord] = []
        for pid in parent_ids:
            rows.extend(children.get(pid, []))
        grouped: Dict[str, List[SpanRecord]] = {}
        for record in sorted(rows, key=lambda r: r.start):
            grouped.setdefault(record.name, []).append(record)
        for name, group in grouped.items():
            total = sum(r.duration for r in group)
            label = name if len(group) == 1 else f"{name} x{len(group)}"
            pad = max(36 - indent * depth, len(label) + 1)
            lines.append(f"{' ' * (indent * depth)}{label:<{pad}}"
                         f"{total * 1e3:10.3f} ms")
            walk([r.span_id for r in group], depth + 1)

    walk([None], 0)
    if dropped:
        lines.append(f"[trace truncated: {dropped} span"
                     f"{'s' if dropped != 1 else ''} dropped past the "
                     f"buffer limit]")
    return "\n".join(lines)
