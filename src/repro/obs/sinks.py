"""Pluggable telemetry sinks.

A sink receives one event dict per finished span (and whatever other
events a caller chooses to emit, e.g. a final metrics snapshot).  Sinks
are deliberately dumb: routing, buffering and file lifetime are the
sink's whole job, so exporters and the CLI can share them.
"""

from __future__ import annotations

import json
import sys
import threading
from typing import Optional, TextIO

from repro.obs.config import ObsConfig


class Sink:
    """Receives telemetry events as plain dicts."""

    def emit(self, kind: str, payload: dict) -> None:
        """Handle one event.  ``kind`` is ``"span"``, ``"metrics"``..."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any underlying resources."""


class NullSink(Sink):
    """Discards everything (the in-memory buffers still record)."""

    def emit(self, kind: str, payload: dict) -> None:
        pass


class StderrSink(Sink):
    """Logs one human-readable line per event to stderr."""

    def __init__(self, stream: Optional[TextIO] = None):
        self._stream = stream if stream is not None else sys.stderr

    def emit(self, kind: str, payload: dict) -> None:
        if kind == "span":
            name = payload.get("name", "?")
            dur = payload.get("duration", 0.0) * 1e6
            attrs = payload.get("attrs") or {}
            extra = " ".join(f"{k}={v}" for k, v in attrs.items())
            line = f"[obs] span {name} {dur:.1f}us"
            if extra:
                line += " " + extra
        else:
            line = f"[obs] {kind} {json.dumps(payload, sort_keys=True)}"
        print(line, file=self._stream)


class JsonlSink(Sink):
    """Appends one JSON object per line to a file (thread-safe)."""

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._handle: Optional[TextIO] = open(path, "a")

    def emit(self, kind: str, payload: dict) -> None:
        record = dict(payload)
        record["kind"] = kind
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                self._handle.close()
                self._handle = None


def make_sink(config: ObsConfig) -> Sink:
    """Build the sink selected by a config."""
    if config.sink == "stderr":
        return StderrSink()
    if config.sink == "jsonl":
        return JsonlSink(config.sink_path)
    return NullSink()
