"""Telemetry configuration.

One :class:`ObsConfig` governs the whole observability stack: whether
anything is recorded at all (``enabled``), which halves are active
(``trace`` / ``metrics``), where live span events stream to (``sink``)
and the safety bounds that keep an instrumented long-running process
from growing without limit (``trace_limit``, ``max_series``).

The default configuration is *disabled*: every instrumentation point in
the solvers degrades to a single attribute check, so the un-observed
hot path stays effectively free (see ``tests/test_obs.py`` for the
overhead budget assertion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Valid values for :attr:`ObsConfig.sink`.
SINK_KINDS = ("null", "stderr", "jsonl")


@dataclass
class ObsConfig:
    """Controls for the telemetry subsystem.

    Attributes:
        enabled: master switch.  When False (the default) spans and
            metric operations are no-ops.
        trace: record hierarchical spans (requires ``enabled``).
        metrics: record counters/gauges/histograms (requires
            ``enabled``).
        sink: live event sink — ``"null"`` (keep in memory only),
            ``"stderr"`` (log one line per finished span) or
            ``"jsonl"`` (append JSON lines to ``sink_path``).
        sink_path: output file for the ``"jsonl"`` sink.
        trace_limit: maximum retained span records; once full, further
            spans are timed but dropped from the buffer (and counted).
        max_series: per-metric cap on distinct label sets; observations
            for label sets beyond the cap are dropped and counted in
            the registry's ``dropped_series`` total.
    """

    enabled: bool = False
    trace: bool = True
    metrics: bool = True
    sink: str = "null"
    sink_path: Optional[str] = None
    trace_limit: int = 100_000
    max_series: int = 256

    def __post_init__(self) -> None:
        if self.sink not in SINK_KINDS:
            raise ValueError(
                f"sink must be one of {SINK_KINDS}, got {self.sink!r}")
        if self.sink == "jsonl" and not self.sink_path:
            raise ValueError("sink='jsonl' needs a sink_path")
        if self.trace_limit < 1:
            raise ValueError("trace_limit must be >= 1")
        if self.max_series < 1:
            raise ValueError("max_series must be >= 1")
