"""Telemetry: hierarchical tracing, metrics and pluggable sinks.

The solvers are instrumented against one process-wide
:class:`Telemetry` bundle (tracer + metrics registry + sink), reached
through module-level helpers so call sites stay one-liners::

    from repro.obs import configure, span, inc, observe

    configure(ObsConfig(enabled=True))
    with span("qwm.region", k=2):
        inc("device.table.evaluations", 17)
        observe("qwm.newton.iterations", 4)

By default telemetry is *disabled* and every helper degrades to a
single attribute check (plus a shared no-op span), so instrumented hot
paths cost effectively nothing when un-observed.  ``configure`` swaps
the whole bundle atomically; ``disable()`` restores the default.

See DESIGN.md ("Observability") for the metric catalog and how the
names map onto the paper's cost model.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.accuracy import (AccuracyConfig, AccuracyObservatory,
                                accuracy_regressions,
                                append_history_entry, attribute_regions,
                                capture_regions, configure_accuracy,
                                disable_accuracy, history_entry,
                                load_history_entries, note_region,
                                observatory, worst_regression)
from repro.obs.config import ObsConfig, SINK_KINDS
from repro.obs.flight import (FlightConfig, FlightRecorder, LedgerEvent,
                              configure_flight, disable_flight, flight,
                              render_report, summarize_ledger)
from repro.obs.metrics import (CATALOG, Counter, Gauge, Histogram,
                               MetricsRegistry)
from repro.obs.profile import (PhaseProfiler, ProfileConfig,
                               configure_profile, disable_profile,
                               export_speedscope, phase_self_seconds,
                               profile_add, profile_phase, profiler,
                               render_profile, summarize_profile,
                               to_collapsed, to_speedscope)
from repro.obs.sinks import (JsonlSink, NullSink, Sink, StderrSink,
                             make_sink)
from repro.obs.trace import (NOOP_SPAN, SpanRecord, Tracer,
                             format_span_tree)

__all__ = [
    "ObsConfig", "SINK_KINDS", "Telemetry", "telemetry", "configure",
    "disable", "span", "inc", "observe", "set_gauge", "CATALOG",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "Sink",
    "NullSink", "StderrSink", "JsonlSink", "make_sink", "Tracer",
    "SpanRecord", "NOOP_SPAN", "format_span_tree",
    "FlightConfig", "FlightRecorder", "LedgerEvent", "flight",
    "configure_flight", "disable_flight", "summarize_ledger",
    "render_report",
    "ProfileConfig", "PhaseProfiler", "profiler", "configure_profile",
    "disable_profile", "profile_phase", "profile_add", "to_collapsed",
    "to_speedscope", "export_speedscope", "summarize_profile",
    "render_profile", "phase_self_seconds",
    "AccuracyConfig", "AccuracyObservatory", "observatory",
    "configure_accuracy", "disable_accuracy", "capture_regions",
    "note_region", "attribute_regions", "history_entry",
    "append_history_entry", "load_history_entries",
    "accuracy_regressions", "worst_regression",
]


class Telemetry:
    """One configured observability stack (tracer + metrics + sink)."""

    def __init__(self, config: Optional[ObsConfig] = None):
        self.config = config or ObsConfig()
        self.sink = make_sink(self.config)
        self.tracer = Tracer(
            enabled=self.config.enabled and self.config.trace,
            limit=self.config.trace_limit, sink=self.sink)
        self.metrics = MetricsRegistry(
            enabled=self.config.enabled and self.config.metrics,
            max_series=self.config.max_series)

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    # ------------------------------------------------------------------
    def export_trace(self, path: str) -> str:
        """Write the span buffer as a Chrome ``trace_event`` file."""
        return self.tracer.export_chrome(path)

    def export_metrics(self, path: str) -> str:
        """Write the metrics registry as a JSON dump."""
        return self.metrics.export_json(path)

    def close(self) -> None:
        self.sink.close()


#: The process-wide bundle; disabled until ``configure`` is called.
_TELEMETRY = Telemetry(ObsConfig(enabled=False))


def telemetry() -> Telemetry:
    """The current process-wide telemetry bundle."""
    return _TELEMETRY


def configure(config: ObsConfig) -> Telemetry:
    """Install a new telemetry bundle and return it.

    The previous bundle's sink is closed.  Instrumented code reads the
    bundle through the module-level helpers at each call, so the swap
    takes effect immediately everywhere.
    """
    global _TELEMETRY
    _TELEMETRY.close()
    _TELEMETRY = Telemetry(config)
    return _TELEMETRY


def disable() -> Telemetry:
    """Restore the default disabled bundle."""
    return configure(ObsConfig(enabled=False))


# ----------------------------------------------------------------------
# Hot-path helpers — one attribute check when telemetry is disabled.
# ----------------------------------------------------------------------
def span(name: str, **attrs):
    """Open a span on the current tracer (no-op when disabled)."""
    tracer = _TELEMETRY.tracer
    if not tracer.enabled:
        return NOOP_SPAN
    return tracer.span(name, attrs)


def inc(name: str, amount: float = 1.0, **labels) -> None:
    """Increment a counter (no-op when disabled)."""
    registry = _TELEMETRY.metrics
    if registry.enabled:
        registry.counter(name).inc(amount, **labels)


def observe(name: str, value: float, **labels) -> None:
    """Record a histogram observation (no-op when disabled)."""
    registry = _TELEMETRY.metrics
    if registry.enabled:
        registry.histogram(name).observe(value, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    """Set a gauge (no-op when disabled)."""
    registry = _TELEMETRY.metrics
    if registry.enabled:
        registry.gauge(name).set(value, **labels)
