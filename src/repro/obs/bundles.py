"""Self-contained debug bundles with deterministic replay.

A bundle freezes everything one failing (or suspicious) QWM solve
needs to be re-run on another machine with nothing but this repo: the
stage netlist, the characterized device-table slices the path actually
used, the input waveforms, the solver options, the RNG seed (reserved
for stochastic callers — the QWM schedule itself is deterministic), the
flight ledger, and — for solve failures — the exact region-start state
of the failing region.

Replay is *bit-for-bit*: every float is serialized through Python's
shortest-repr JSON round-trip, the failing region's Newton calls are
re-issued with the recorded initial guess and equivalent caps, and the
resulting iteration trajectories are compared for exact equality
(NaN-aware).  A mismatch means the environment, not the input, changed.

Format: a single JSON file, ``"format": "repro-flight-bundle/1"``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "stage_to_json", "stage_from_json", "source_to_json",
    "source_from_json", "options_to_json", "options_from_json",
    "tech_to_json", "tech_from_json", "grid_to_json", "grid_from_json",
    "collect_grids", "ReplayLibrary", "build_bundle", "save_bundle",
    "load_bundle", "ReplayAttempt", "ReplayResult", "replay_bundle",
]

BUNDLE_FORMAT = "repro-flight-bundle/1"


# ----------------------------------------------------------------------
# Stage netlist
# ----------------------------------------------------------------------
def stage_to_json(stage: Any) -> Dict[str, Any]:
    """Serialize a :class:`~repro.circuit.netlist.LogicStage`."""
    return {
        "name": stage.name,
        "vdd": stage.vdd,
        "nodes": [{"name": n.name, "load_cap": n.load_cap,
                   "is_output": n.is_output} for n in stage.nodes],
        "edges": [{"name": e.name, "kind": e.kind.value,
                   "src": e.src.name, "snk": e.snk.name,
                   "w": e.w, "l": e.l, "gate": e.gate_input}
                  for e in stage.edges],
    }


def stage_from_json(data: Dict[str, Any]) -> Any:
    """Rebuild a LogicStage from :func:`stage_to_json` output."""
    from repro.circuit.netlist import GND_NODE, VDD_NODE, LogicStage

    stage = LogicStage(data["name"], data["vdd"])
    for node in data["nodes"]:
        if node["name"] in (VDD_NODE, GND_NODE):
            if node["load_cap"]:
                stage.set_load(node["name"], node["load_cap"])
            continue
        stage.add_node(node["name"], load_cap=node["load_cap"])
    for edge in data["edges"]:
        if edge["kind"] == "nmos":
            stage.add_nmos(edge["name"], edge["src"], edge["snk"],
                           edge["gate"], edge["w"], edge["l"])
        elif edge["kind"] == "pmos":
            stage.add_pmos(edge["name"], edge["src"], edge["snk"],
                           edge["gate"], edge["w"], edge["l"])
        else:
            stage.add_wire(edge["name"], edge["src"], edge["snk"],
                           edge["w"], edge["l"])
    for node in data["nodes"]:
        if node["is_output"]:
            stage.mark_output(node["name"])
    return stage


# ----------------------------------------------------------------------
# Input sources
# ----------------------------------------------------------------------
def source_to_json(source: Any) -> Dict[str, Any]:
    """Serialize any :class:`~repro.spice.sources.Source` subclass."""
    from repro.spice import sources as mod

    if isinstance(source, mod.PWLSource):
        return {"kind": "pwl",
                "points": [[t, v] for t, v in zip(source.times,
                                                  source.values)]}
    for kind, cls in _SOURCE_CLASSES().items():
        if type(source) is cls:
            return {"kind": kind, **asdict(source)}
    raise TypeError(f"cannot serialize source {type(source).__name__}")


def source_from_json(data: Dict[str, Any]) -> Any:
    from repro.spice import sources as mod

    kind = data["kind"]
    if kind == "pwl":
        return mod.PWLSource(data["points"])
    cls = _SOURCE_CLASSES().get(kind)
    if cls is None:
        raise ValueError(f"unknown source kind {kind!r}")
    fields = {k: v for k, v in data.items() if k != "kind"}
    return cls(**fields)


def _SOURCE_CLASSES() -> Dict[str, type]:
    from repro.spice import sources as mod

    return {"constant": mod.ConstantSource, "step": mod.StepSource,
            "ramp": mod.RampSource, "pulse": mod.PulseSource}


# ----------------------------------------------------------------------
# Solver options
# ----------------------------------------------------------------------
def options_to_json(options: Any) -> Dict[str, Any]:
    """Serialize :class:`~repro.core.qwm.QWMOptions` (incl. Newton)."""
    data = asdict(options)
    data["milestone_fractions"] = list(options.milestone_fractions)
    return data


def options_from_json(data: Dict[str, Any]) -> Any:
    from repro.core.qwm import QWMOptions
    from repro.linalg.newton import NewtonOptions

    data = dict(data)
    newton = NewtonOptions(**data.pop("newton"))
    data["milestone_fractions"] = tuple(data["milestone_fractions"])
    return QWMOptions(newton=newton, **data)


# ----------------------------------------------------------------------
# Technology and characterized device tables
# ----------------------------------------------------------------------
def tech_to_json(tech: Any) -> Dict[str, Any]:
    return {
        "name": tech.name, "vdd": tech.vdd, "lmin": tech.lmin,
        "wmin": tech.wmin, "temperature": tech.temperature,
        "nmos": asdict(tech.nmos), "pmos": asdict(tech.pmos),
        "wire": asdict(tech.wire),
    }


def tech_from_json(data: Dict[str, Any]) -> Any:
    from repro.devices.technology import (MosParams, Technology,
                                          WireParams)

    return Technology(
        name=data["name"], vdd=data["vdd"], lmin=data["lmin"],
        wmin=data["wmin"], temperature=data["temperature"],
        nmos=MosParams(**data["nmos"]), pmos=MosParams(**data["pmos"]),
        wire=WireParams(**data["wire"]))


def grid_to_json(grid: Any) -> Dict[str, Any]:
    """Serialize a CharacterizationGrid (derived planes excluded)."""
    return {
        "polarity": grid.polarity,
        "w_ref": grid.w_ref,
        "l_ref": grid.l_ref,
        "vdd": grid.vdd,
        "vs_values": [float(v) for v in grid.vs_values],
        "vg_values": [float(v) for v in grid.vg_values],
        "fits": [[[f.s1, f.s0, f.t2, f.t1, f.t0, f.vth, f.vdsat]
                  for f in row] for row in grid.fits],
    }


def grid_from_json(data: Dict[str, Any]) -> Any:
    from repro.devices.characterize import (CharacterizationGrid,
                                            FittedIV)

    fits = [[FittedIV(*entry) for entry in row] for row in data["fits"]]
    return CharacterizationGrid(
        polarity=data["polarity"], w_ref=data["w_ref"],
        l_ref=data["l_ref"], vdd=data["vdd"],
        vs_values=np.asarray(data["vs_values"], dtype=float),
        vg_values=np.asarray(data["vg_values"], dtype=float),
        fits=fits)


def collect_grids(path: Any) -> List[Dict[str, Any]]:
    """The device-table slices a path's transistors actually use."""
    seen: Dict[Tuple[str, float], Dict[str, Any]] = {}
    for device in path.devices:
        if device.table is None:
            continue
        grid = device.table.grid
        key = (grid.polarity, round(device.l, 12))
        if key not in seen:
            entry = grid_to_json(grid)
            entry["length"] = device.l
            seen[key] = entry
    return list(seen.values())


class ReplayLibrary:
    """Frozen table-model library rebuilt from bundled grids.

    Implements the slice of the :class:`TableModelLibrary` contract the
    path extractor consumes (``tech``, ``grid_step``, ``get``), backed
    by exactly the grids the bundle recorded — no re-characterization,
    so replayed currents match the original run bit-for-bit.
    """

    def __init__(self, tech: Any, grid_step: float,
                 grids: List[Dict[str, Any]]):
        self.tech = tech
        self.grid_step = grid_step
        self._grids: Dict[Tuple[str, float], Any] = {}
        for entry in grids:
            key = (entry["polarity"], round(entry["length"], 12))
            self._grids[key] = grid_from_json(entry)
        self._models: Dict[Tuple[str, float], Any] = {}

    def get(self, polarity: str, l: Optional[float] = None) -> Any:
        from repro.devices.table_model import TableDeviceModel

        length = self.tech.lmin if l is None else l
        key = (polarity, round(length, 12))
        if key not in self._models:
            if key not in self._grids:
                raise KeyError(
                    f"bundle has no table for polarity={polarity!r} "
                    f"L={length:.3e}; it is not self-contained for this "
                    "query")
            params = (self.tech.nmos if polarity == "n"
                      else self.tech.pmos)
            self._models[key] = TableDeviceModel(self._grids[key], params)
        return self._models[key]


# ----------------------------------------------------------------------
# Bundle build / save / load
# ----------------------------------------------------------------------
def build_bundle(path: Any, inputs: Dict[str, Any],
                 initial: Dict[str, float], t_start: float,
                 options: Any, reason: str, tech: Any,
                 grid_step: float,
                 failure: Optional[Dict[str, Any]] = None,
                 ledger: Optional[Dict[str, Any]] = None,
                 extra: Optional[Dict[str, Any]] = None,
                 rng_seed: Optional[int] = None) -> Dict[str, Any]:
    """Assemble a self-contained bundle for one solve.

    Args:
        path: the :class:`DischargePath` that was solved.
        inputs: gate input name -> Source (actual domain).
        initial: node name -> initial actual voltage [V].
        t_start: schedule start time [s].
        options: the QWMOptions in effect.
        reason: ``"solve_failure"`` or ``"golden_band_violation"``.
        tech: the Technology the tables were characterized against.
        grid_step: the library grid pitch the tables were built with.
        failure: the ``region_failed`` event data (None for band
            violations, where the whole solve replays instead).
        ledger: the flight ledger (``FlightRecorder.to_json()``).
        extra: caller context (golden diff numbers, arc identity...).
        rng_seed: seed for stochastic callers; None for QWM itself.
    """
    from repro.spice.sources import as_source

    return {
        "format": BUNDLE_FORMAT,
        "created_unix": time.time(),
        "reason": reason,
        "rng_seed": rng_seed,
        "stage": stage_to_json(path.stage),
        "output": path.output,
        "direction": path.direction,
        "sources": {name: source_to_json(as_source(src))
                    for name, src in inputs.items()},
        "initial": dict(initial),
        "t_start": t_start,
        "options": options_to_json(options),
        "tech": tech_to_json(tech),
        "grid_step": grid_step,
        "grids": collect_grids(path),
        "failure": failure,
        "ledger": ledger or {},
        "extra": extra or {},
    }


def save_bundle(bundle: Dict[str, Any], directory: str,
                label: str = "bundle") -> str:
    """Write a bundle under ``directory`` and return its path."""
    os.makedirs(directory, exist_ok=True)
    safe = "".join(c if c.isalnum() or c in "-_." else "_"
                   for c in label)[:80]
    base = f"{safe}-{os.getpid()}"
    filename = os.path.join(directory, f"{base}.json")
    counter = 1
    while os.path.exists(filename):
        filename = os.path.join(directory, f"{base}-{counter}.json")
        counter += 1
    with open(filename, "w", encoding="utf-8") as handle:
        json.dump(bundle, handle, indent=1)
    return filename


def load_bundle(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        bundle = json.load(handle)
    if bundle.get("format") != BUNDLE_FORMAT:
        raise ValueError(
            f"{path}: not a flight bundle (format="
            f"{bundle.get('format')!r}, expected {BUNDLE_FORMAT!r})")
    return bundle


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
@dataclass
class ReplayAttempt:
    """One replayed Newton call vs. its recording."""

    index: int
    recorded_outcome: str
    replayed_outcome: str
    recorded_trajectory: List[Dict[str, float]]
    replayed_trajectory: List[Dict[str, float]]

    @property
    def identical(self) -> bool:
        return (self.recorded_outcome == self.replayed_outcome
                and _trajectories_equal(self.recorded_trajectory,
                                        self.replayed_trajectory))


@dataclass
class ReplayResult:
    """Outcome of :func:`replay_bundle`."""

    mode: str  # "region" (failure replay) or "solve" (full re-run)
    attempts: List[ReplayAttempt] = field(default_factory=list)
    solution_delay: Optional[float] = None
    notes: List[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return all(a.identical for a in self.attempts)

    def render(self) -> str:
        lines = [f"replay mode: {self.mode}"]
        for note in self.notes:
            lines.append(f"  {note}")
        for attempt in self.attempts:
            verdict = ("IDENTICAL" if attempt.identical
                       else "DIVERGED")
            lines.append(
                f"attempt {attempt.index}: recorded="
                f"{attempt.recorded_outcome} replayed="
                f"{attempt.replayed_outcome} "
                f"iters={max(len(attempt.replayed_trajectory) - 1, 0)} "
                f"-> {verdict}")
            if not attempt.identical:
                lines.extend(_diff_trajectories(
                    attempt.recorded_trajectory,
                    attempt.replayed_trajectory))
        if self.solution_delay is not None:
            lines.append(f"re-run 50% delay: {self.solution_delay:.6e} s")
        if self.attempts:
            lines.append("trajectories bit-for-bit identical: "
                         f"{self.identical}")
        return "\n".join(lines)


def _float_equal(a: Any, b: Any) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        if np.isnan(a) and np.isnan(b):
            return True
        return a == b
    return a == b


def _trajectories_equal(rec: List[Dict[str, float]],
                        rep: List[Dict[str, float]]) -> bool:
    if len(rec) != len(rep):
        return False
    for r1, r2 in zip(rec, rep):
        if set(r1) != set(r2):
            return False
        for key in r1:
            if not _float_equal(r1[key], r2[key]):
                return False
    return True


def _diff_trajectories(rec: List[Dict[str, float]],
                       rep: List[Dict[str, float]]) -> List[str]:
    lines = [f"    recorded {len(rec)} entries, replayed {len(rep)}"]
    for idx in range(min(len(rec), len(rep))):
        if not _trajectories_equal([rec[idx]], [rep[idx]]):
            lines.append(f"    first divergence at iteration {idx}:")
            lines.append(f"      recorded: {rec[idx]}")
            lines.append(f"      replayed: {rep[idx]}")
            break
    return lines


def condition_from_json(data: Dict[str, Any]) -> Any:
    from repro.core.matching import (CrossingCondition, TimeCondition,
                                     TurnOnCondition)

    kind = data["kind"]
    if kind == "crossing":
        return CrossingCondition(data["target"])
    if kind == "time":
        return TimeCondition(data["t_end"])
    if kind == "turn_on":
        return TurnOnCondition(data["device_index"])
    raise ValueError(f"unknown condition kind {kind!r}")


def rebuild_path(bundle: Dict[str, Any]) -> Tuple[Any, Dict[str, Any]]:
    """Reconstruct the DischargePath and sources from a bundle."""
    from repro.core.path import extract_path

    stage = stage_from_json(bundle["stage"])
    tech = tech_from_json(bundle["tech"])
    sources = {name: source_from_json(src)
               for name, src in bundle["sources"].items()}
    library = ReplayLibrary(tech, bundle["grid_step"], bundle["grids"])
    options = options_from_json(bundle["options"])
    path = extract_path(stage, bundle["output"], bundle["direction"],
                        sources, library, t_final=options.t_stop)
    return path, sources


def replay_bundle(bundle: Dict[str, Any],
                  verbose: bool = False) -> ReplayResult:
    """Deterministically re-run the solve a bundle captured.

    For a solve-failure bundle the failing region's recorded Newton
    calls are re-issued one by one (recorded guess + caps) and the
    trajectories compared bit-for-bit.  For a band-violation bundle
    (no failing region) the full schedule is re-run and the measured
    delay reported.
    """
    from repro.core.matching import RegionSystem
    from repro.core.qwm import QWMSolver

    options = options_from_json(bundle["options"])
    path, sources = rebuild_path(bundle)
    failure = bundle.get("failure")

    if not failure:
        solver = QWMSolver(path, options)
        solution = solver.solve(sources, bundle["initial"],
                                bundle["t_start"])
        result = ReplayResult(mode="solve",
                              solution_delay=solution.delay(
                                  t_input=bundle["t_start"]))
        result.notes.append(
            f"regions solved: {solution.stats.steps}, newton "
            f"iterations: {solution.stats.newton_iterations}")
        return result

    # Region replay: every recorded Newton call of the failing region.
    events = [e for e in bundle.get("ledger", {}).get("events", [])
              if e["kind"] == "newton"
              and e["data"].get("active") == failure["active"]
              and _float_equal(e["data"].get("tau"), failure["tau"])]
    result = ReplayResult(mode="region")
    result.notes.append(
        f"failing region: active={failure['active']} "
        f"tau={failure['tau']:.6e} "
        f"condition={failure.get('condition')}")
    if not events:
        result.notes.append("bundle ledger has no newton events for the "
                            "failing region (event_limit too small?)")
        return result

    for index, event in enumerate(events):
        data = event["data"]
        condition = condition_from_json(data["condition"])
        u = np.asarray(data["u"], dtype=float)
        i = np.asarray(data["i"], dtype=float)
        caps = np.asarray(data["caps"], dtype=float)
        guess = np.asarray(data["guess"], dtype=float)
        system = RegionSystem(path, sources, data["active"],
                              data["tau"], u, i, condition, caps=caps,
                              order=int(data["order"]))
        trajectory: List[Dict[str, float]] = []
        outcome = "converged"
        try:
            res = system.newton_solve(
                guess, options=options.newton,
                use_sherman_morrison=options.use_sherman_morrison,
                trajectory=trajectory)
            if not float(res.x[data["active"]]) > data["tau"]:
                outcome = "non_advancing_time"
        except Exception as exc:  # NewtonConvergenceError
            outcome = getattr(exc, "reason", "error")
        attempt = ReplayAttempt(
            index=index,
            recorded_outcome=data.get("outcome", "?"),
            replayed_outcome=outcome,
            recorded_trajectory=data.get("trajectory", []),
            replayed_trajectory=trajectory)
        result.attempts.append(attempt)
        if verbose:
            for entry in trajectory:
                result.notes.append(
                    f"  attempt {index} it={int(entry['iteration'])} "
                    f"|F|={entry['residual_norm']:.6e} "
                    f"|dx|={entry['step_norm']:.6e} "
                    f"shrink={entry['shrink']:.3g}")
    return result
