"""Solver flight recorder: per-region convergence forensics.

Where ``repro.obs`` answers "how much did this run cost?", the flight
recorder answers "what happened inside *that* solve?".  When enabled it
keeps a structured, bounded, thread-safe ledger of per-region events for
every QWM solve:

* ``solve_begin`` / ``solve_end`` — one pair per ``QWMSolver.solve``,
  tagged with whatever arc context (stage / output / direction /
  switching input) the caller pushed via :meth:`FlightRecorder.context`.
* ``newton`` — one per Newton invocation (region attempt x cap
  refinement): the initial guess, the equivalent caps used, the full
  iteration trajectory (residual norms, step norms, line-search
  damping) and the outcome (``converged`` or a machine-readable
  failure reason from :data:`repro.linalg.newton.FAILURE_REASONS`).
* ``region_solved`` — the matched milestone: τ, the α vector (frame
  node voltages), order used, attempts, iterations and the table-model
  query delta spent on the region.
* ``region_failed`` — the exhausted retry ladder with its reason
  taxonomy, plus the exact region-start state (τ, u, i, condition) a
  debug bundle needs for deterministic replay.
* ``fallback`` — schedule-level fallbacks: ``ramp_break_anchor``,
  ``region_subdivision``, ``cascade_abort``.

Cache attribution: the parallel engine calls
:meth:`FlightRecorder.note_arc_result` after computing an arc and
:meth:`FlightRecorder.note_cache_hit` when serving it from cache, so a
hit carries provenance back to the solve ids that produced the value.

Like the telemetry bundle, the recorder is process-wide, disabled by
default, and every hot-path check degrades to a single attribute read
(``flight().enabled``) when off.  See DESIGN.md ("Forensics & replay")
for the event schema and the bundle format.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "FlightConfig", "LedgerEvent", "FlightRecorder", "flight",
    "configure_flight", "disable_flight", "summarize_ledger",
    "render_report",
]


@dataclass
class FlightConfig:
    """Controls for the flight recorder.

    Attributes:
        enabled: master switch.  When False (the default) every
            instrumentation point is a single attribute check.
        event_limit: maximum retained ledger events; further events are
            dropped and counted.  ``None`` means unbounded — legal, but
            the SOL005 lint rule warns about it in parallel runs.
        capture_bundles: serialize a debug bundle on solve failure or
            when a caller forces capture (golden band violations).
        bundle_dir: directory debug bundles are written into.
        max_bundles: cap on bundles written per recorder lifetime (a
            failing sweep should not fill the disk).
        verbose: echo ledger events to stderr as they are recorded.
    """

    enabled: bool = False
    event_limit: Optional[int] = 20_000
    capture_bundles: bool = False
    bundle_dir: str = "flight-bundles"
    max_bundles: int = 16
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.event_limit is not None and self.event_limit < 1:
            raise ValueError("event_limit must be >= 1 or None (unbounded)")
        if self.max_bundles < 0:
            raise ValueError("max_bundles must be non-negative")


@dataclass
class LedgerEvent:
    """One recorded flight event.

    Attributes:
        seq: global sequence number (insertion order across threads).
        solve_id: the owning solve (0 = outside any solve).
        kind: event kind (``solve_begin``, ``newton``, ``region_solved``,
            ``region_failed``, ``fallback``, ``solve_end``, ...).
        data: kind-specific payload (JSON-serializable).
    """

    seq: int
    solve_id: int
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {"seq": self.seq, "solve_id": self.solve_id,
                "kind": self.kind, "data": self.data}


class FlightRecorder:
    """Thread-safe bounded event ledger with solve/arc provenance."""

    def __init__(self, config: Optional[FlightConfig] = None):
        self.config = config or FlightConfig()
        self._lock = threading.Lock()
        self._events: List[LedgerEvent] = []
        self._dropped = 0
        self._seq = 0
        self._solve_counter = 0
        self._bundles_written = 0
        self._local = threading.local()
        # arc cache key -> {"solve_ids": [...], "hits": int}
        self._provenance: Dict[str, Dict[str, Any]] = {}

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    # ------------------------------------------------------------------
    # Arc context (thread-local): pushed by the STA layer so solve
    # events carry stage/arc identity without threading it through the
    # solver call chain.
    # ------------------------------------------------------------------
    @contextmanager
    def context(self, **attrs: Any) -> Iterator[None]:
        """Attach attributes to every solve begun inside the block."""
        stack = getattr(self._local, "ctx", None)
        if stack is None:
            stack = self._local.ctx = []
        stack.append(attrs)
        try:
            yield
        finally:
            stack.pop()

    def current_context(self) -> Dict[str, Any]:
        merged: Dict[str, Any] = {}
        for frame in getattr(self._local, "ctx", ()):
            merged.update(frame)
        return merged

    def force_capture(self, reason: str) -> None:
        """Request a bundle from the next completed solve on this thread.

        Used by the golden suite: a band violation is not a solve
        failure, so the capture has to be forced from outside.
        """
        self._local.force = reason

    def consume_force_capture(self) -> Optional[str]:
        reason = getattr(self._local, "force", None)
        self._local.force = None
        return reason

    def note_solve_failure(self, solve_id: int,
                           failure: Dict[str, Any]) -> None:
        """Stash a region failure for the bundle-capturing caller.

        The QWM scheduler records the failure; the evaluator (which
        owns the technology and table library a bundle needs) collects
        it right after the solve returns, on the same thread.
        """
        self._local.failure = dict(failure, solve_id=solve_id)

    def take_solve_failure(self) -> Optional[Dict[str, Any]]:
        failure = getattr(self._local, "failure", None)
        self._local.failure = None
        return failure

    # ------------------------------------------------------------------
    # Solve lifecycle
    # ------------------------------------------------------------------
    def begin_solve(self, **attrs: Any) -> int:
        """Allocate a solve id and record ``solve_begin``."""
        with self._lock:
            self._solve_counter += 1
            solve_id = self._solve_counter
        data = self.current_context()
        data.update(attrs)
        self.record("solve_begin", solve_id=solve_id, **data)
        return solve_id

    def end_solve(self, solve_id: int, **attrs: Any) -> None:
        self.record("solve_end", solve_id=solve_id, **attrs)

    def next_solve_id(self) -> int:
        """The id the *next* ``begin_solve`` will return (for ranges)."""
        with self._lock:
            return self._solve_counter + 1

    # ------------------------------------------------------------------
    # Event recording
    # ------------------------------------------------------------------
    def record(self, kind: str, solve_id: int = 0, **data: Any) -> None:
        """Append one event to the ledger (drop + count when full)."""
        cfg = self.config
        with self._lock:
            limit = cfg.event_limit
            if limit is not None and len(self._events) >= limit:
                self._dropped += 1
                return
            self._seq += 1
            event = LedgerEvent(seq=self._seq, solve_id=solve_id,
                                kind=kind, data=data)
            self._events.append(event)
        if cfg.verbose:
            import sys

            print(f"[flight] #{event.seq} solve={solve_id} {kind} "
                  f"{_brief(data)}", file=sys.stderr)

    # ------------------------------------------------------------------
    # Cache attribution (parallel engine)
    # ------------------------------------------------------------------
    def note_arc_result(self, key: str, first_solve: int,
                        next_solve: int) -> None:
        """Attribute an arc's cached value to the solves that made it.

        ``first_solve`` is :meth:`next_solve_id` sampled before the arc
        was computed, ``next_solve`` the same sample after — the
        half-open id range covers exactly the solves the arc ran.
        """
        solve_ids = list(range(first_solve, next_solve))
        with self._lock:
            entry = self._provenance.setdefault(
                key, {"solve_ids": [], "hits": 0})
            entry["solve_ids"] = solve_ids
        self.record("arc_result", solve_id=first_solve if solve_ids else 0,
                    key=key, solve_ids=solve_ids)

    def note_cache_hit(self, key: str) -> None:
        """Record a cache hit, pointing back at the original solves."""
        with self._lock:
            entry = self._provenance.setdefault(
                key, {"solve_ids": [], "hits": 0})
            entry["hits"] += 1
            origin = list(entry["solve_ids"])
        self.record("cache_hit", key=key, origin_solve_ids=origin)

    # ------------------------------------------------------------------
    # Bundle budget
    # ------------------------------------------------------------------
    def claim_bundle_slot(self) -> bool:
        """Reserve one bundle write; False once the budget is spent."""
        with self._lock:
            if self._bundles_written >= self.config.max_bundles:
                return False
            self._bundles_written += 1
            return True

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def events(self) -> List[LedgerEvent]:
        with self._lock:
            return list(self._events)

    def provenance(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            return {k: dict(v) for k, v in self._provenance.items()}

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"recorded": len(self._events),
                    "dropped": self._dropped,
                    "solves": self._solve_counter,
                    "bundles": self._bundles_written}

    def to_json(self) -> Dict[str, Any]:
        """The whole ledger as one JSON-serializable dict."""
        with self._lock:
            events = [e.to_json() for e in self._events]
            prov = {k: dict(v) for k, v in self._provenance.items()}
            return {
                "format": "repro-flight-ledger/1",
                "events": events,
                "dropped": self._dropped,
                "solves": self._solve_counter,
                "provenance": prov,
            }


def _brief(data: Dict[str, Any]) -> str:
    parts = []
    for key, value in data.items():
        if isinstance(value, (list, dict)):
            parts.append(f"{key}=<{len(value)}>")
        elif isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


#: The process-wide recorder; disabled until ``configure_flight``.
_FLIGHT = FlightRecorder(FlightConfig(enabled=False))


def flight() -> FlightRecorder:
    """The current process-wide flight recorder."""
    return _FLIGHT


def configure_flight(config: FlightConfig) -> FlightRecorder:
    """Install a fresh recorder for ``config`` and return it."""
    global _FLIGHT
    _FLIGHT = FlightRecorder(config)
    return _FLIGHT


def disable_flight() -> FlightRecorder:
    """Restore the default disabled recorder."""
    return configure_flight(FlightConfig(enabled=False))


# ----------------------------------------------------------------------
# Run reports
# ----------------------------------------------------------------------
def summarize_ledger(ledger: Any) -> Dict[str, Any]:
    """Aggregate a ledger into report-ready statistics.

    Accepts a :class:`FlightRecorder` or the dict from
    :meth:`FlightRecorder.to_json`.  Returns fallback histogram, Newton
    iteration distribution, worst regions and cache attribution.
    """
    if isinstance(ledger, FlightRecorder):
        ledger = ledger.to_json()
    events = ledger.get("events", [])

    solves: Dict[int, Dict[str, Any]] = {}
    fallbacks: Dict[str, int] = {}
    iteration_counts: List[int] = []
    regions: List[Dict[str, Any]] = []
    newton_failures: Dict[str, int] = {}
    escalations: Dict[str, int] = {}
    faults_injected: Dict[str, int] = {}
    table_queries = 0

    for event in events:
        kind = event["kind"]
        data = event.get("data", {})
        sid = event.get("solve_id", 0)
        if kind == "solve_begin":
            solves[sid] = {"context": data, "regions": 0, "failures": 0}
        elif kind == "newton":
            outcome = data.get("outcome", "")
            if outcome != "converged":
                newton_failures[outcome] = newton_failures.get(outcome, 0) + 1
        elif kind == "region_solved":
            iters = int(data.get("iterations", 0))
            iteration_counts.append(iters)
            table_queries += int(data.get("table_queries", 0))
            regions.append({
                "solve_id": sid,
                "tau": data.get("tau"),
                "condition": data.get("condition"),
                "iterations": iters,
                "attempts": int(data.get("attempts", 1)),
                "order": data.get("order"),
                "failed": False,
                "context": solves.get(sid, {}).get("context", {}),
            })
            if sid in solves:
                solves[sid]["regions"] += 1
        elif kind == "region_failed":
            for reason in data.get("reasons", []):
                fallbacks[reason] = fallbacks.get(reason, 0) + 1
            regions.append({
                "solve_id": sid,
                "tau": data.get("tau"),
                "condition": data.get("condition"),
                "iterations": int(data.get("iterations", 0)),
                "attempts": int(data.get("attempts", 0)),
                "order": None,
                "failed": True,
                "context": solves.get(sid, {}).get("context", {}),
            })
            if sid in solves:
                solves[sid]["failures"] += 1
        elif kind == "fallback":
            name = data.get("fallback", "unknown")
            fallbacks[name] = fallbacks.get(name, 0) + 1
        elif kind == "escalation":
            key = (f"{data.get('from_rung', '?')} "
                   f"({data.get('reason', 'unknown')})")
            escalations[key] = escalations.get(key, 0) + 1
        elif kind == "fault_injected":
            name = data.get("kind", "unknown")
            faults_injected[name] = faults_injected.get(name, 0) + 1

    # Worst regions: failures first, then by attempts, then iterations.
    worst = sorted(regions, key=lambda r: (not r["failed"], -r["attempts"],
                                           -r["iterations"]))[:10]

    histogram: Dict[str, int] = {}
    for iters in iteration_counts:
        bucket = _iteration_bucket(iters)
        histogram[bucket] = histogram.get(bucket, 0) + 1

    provenance = ledger.get("provenance", {})
    cache = {
        "attributed_arcs": len(provenance),
        "total_hits": sum(int(p.get("hits", 0)) for p in provenance.values()),
        "hot_arcs": sorted(
            ({"key": k, "hits": int(p.get("hits", 0)),
              "origin_solve_ids": list(p.get("solve_ids", []))}
             for k, p in provenance.items()),
            key=lambda e: -e["hits"])[:10],
    }

    return {
        "solves": ledger.get("solves", len(solves)),
        "regions_solved": sum(1 for r in regions if not r["failed"]),
        "regions_failed": sum(1 for r in regions if r["failed"]),
        "events": len(events),
        "events_dropped": int(ledger.get("dropped", 0)),
        "table_queries": table_queries,
        "fallback_histogram": dict(sorted(fallbacks.items())),
        "newton_failure_reasons": dict(sorted(newton_failures.items())),
        "escalation_histogram": dict(sorted(escalations.items())),
        "faults_injected": dict(sorted(faults_injected.items())),
        "iteration_distribution": {
            "histogram": dict(sorted(histogram.items(),
                                     key=lambda kv: _bucket_sort(kv[0]))),
            "mean": (sum(iteration_counts) / len(iteration_counts)
                     if iteration_counts else 0.0),
            "max": max(iteration_counts) if iteration_counts else 0,
        },
        "worst_regions": worst,
        "cache_attribution": cache,
    }


_ITER_BUCKETS = (1, 2, 3, 5, 8, 13, 21, 34)


def _iteration_bucket(iters: int) -> str:
    for edge in _ITER_BUCKETS:
        if iters <= edge:
            return f"<={edge}"
    return f">{_ITER_BUCKETS[-1]}"


def _bucket_sort(label: str) -> int:
    return (int(label[2:]) if label.startswith("<=")
            else _ITER_BUCKETS[-1] + 1)


def render_report(summary: Dict[str, Any]) -> str:
    """Render :func:`summarize_ledger` output as a text report."""
    lines = ["flight report", "============="]
    lines.append(f"solves: {summary['solves']}   "
                 f"regions solved: {summary['regions_solved']}   "
                 f"regions failed: {summary['regions_failed']}   "
                 f"table queries: {summary['table_queries']}")
    lines.append(f"ledger events: {summary['events']} "
                 f"(+{summary['events_dropped']} dropped)")

    lines.append("")
    lines.append("fallback histogram")
    lines.append("------------------")
    if summary["fallback_histogram"]:
        for name, count in summary["fallback_histogram"].items():
            lines.append(f"  {name:<24} {count}")
    else:
        lines.append("  (no fallbacks)")
    if summary["newton_failure_reasons"]:
        lines.append("  failed newton attempts by reason:")
        for name, count in summary["newton_failure_reasons"].items():
            lines.append(f"    {name:<22} {count}")

    escalations = summary.get("escalation_histogram", {})
    faults_injected = summary.get("faults_injected", {})
    if escalations or faults_injected:
        lines.append("")
        lines.append("escalation ladder")
        lines.append("-----------------")
        for key, count in escalations.items():
            lines.append(f"  {key:<32} {count}")
        for name, count in faults_injected.items():
            lines.append(f"  fault injected: {name:<16} {count}")

    dist = summary["iteration_distribution"]
    lines.append("")
    lines.append("newton iterations per region")
    lines.append("----------------------------")
    lines.append(f"  mean {dist['mean']:.2f}   max {dist['max']}")
    for bucket, count in dist["histogram"].items():
        lines.append(f"  {bucket:<6} {'#' * min(count, 60)} {count}")

    lines.append("")
    lines.append("worst regions")
    lines.append("-------------")
    if summary["worst_regions"]:
        for region in summary["worst_regions"]:
            ctx = region.get("context", {})
            where = ctx.get("stage") or ctx.get("arc") or f"solve {region['solve_id']}"
            status = "FAILED" if region["failed"] else "ok"
            tau = region.get("tau")
            tau_s = f"{tau:.4g}s" if isinstance(tau, float) else "?"
            lines.append(
                f"  [{status:>6}] {where}  tau={tau_s}  "
                f"cond={_condition_brief(region.get('condition'))}  "
                f"attempts={region['attempts']}  "
                f"iters={region['iterations']}")
    else:
        lines.append("  (no regions recorded)")

    cache = summary["cache_attribution"]
    lines.append("")
    lines.append("cache attribution")
    lines.append("-----------------")
    lines.append(f"  attributed arcs: {cache['attributed_arcs']}   "
                 f"total hits: {cache['total_hits']}")
    for arc in cache["hot_arcs"]:
        if arc["hits"]:
            origins = ",".join(str(s) for s in arc["origin_solve_ids"][:6])
            lines.append(f"  {arc['hits']:>4} hits  {arc['key']}  "
                         f"<- solves [{origins}]")
    return "\n".join(lines)


def _condition_brief(condition: Any) -> str:
    if not isinstance(condition, dict):
        return str(condition)
    kind = condition.get("kind", "?")
    if kind == "crossing":
        return f"crossing@{condition.get('target', 0.0):.3g}V"
    if kind == "time":
        return f"time@{condition.get('t_end', 0.0):.3g}s"
    if kind == "turn_on":
        return f"turn_on#{condition.get('device_index')}"
    return kind
