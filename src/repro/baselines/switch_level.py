"""Switch-level timing baseline (Crystal / IRSIM style).

Transistors become switched resistors, the conducting pull path becomes
an RC ladder, and the delay estimate is the Elmore delay scaled to the
50% crossing of a single-pole response (``t_50 = ln(2) * T_elmore``).
This is the fastest — and least accurate — methodology the paper's
related-work section describes; it serves as the speed/accuracy anchor
opposite SPICE in the benchmark suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.circuit.elements import DeviceKind
from repro.circuit.netlist import LogicStage
from repro.core.path import DischargePath, extract_path
from repro.devices.table_model import TableModelLibrary
from repro.devices.technology import MosParams, Technology
from repro.interconnect.elmore import elmore_delays
from repro.interconnect.rc_network import RCTree
from repro.spice.sources import SourceLike, as_source


def effective_resistance(params: MosParams, w: float, l: float,
                         vdd: float) -> float:
    """Effective switching resistance of a transistor [ohm].

    The classic average of the saturated-current resistance at ``vdd``
    and at ``vdd/2`` for a device with full gate drive — the standard
    switch-level calibration (Rabaey's ``R_eq``), evaluated on the
    square-law part of the model for simplicity:

        I_dsat ~= 0.5 * kp * (w/l) * (vdd - vth)^2
        R_eq ~= 3/4 * vdd / I_dsat * (1 - 7/9 * lambda * vdd)
    """
    if w <= 0 or l <= 0:
        raise ValueError("geometry must be positive")
    vgt = vdd - params.vth0
    if vgt <= 0:
        raise ValueError("device never turns on at this supply")
    # Velocity-saturation-degraded saturation current.
    ecl = params.ecrit * l
    vdsat = ecl * (math.sqrt(1.0 + 2.0 * vgt / ecl) - 1.0)
    idsat = (params.kp * (w / l)
             * (vgt * vdsat - 0.5 * vdsat * vdsat)
             / (1.0 + vdsat / ecl))
    return 0.75 * vdd / idsat * (1.0 - (7.0 / 9.0) * params.lambda_ * vdd)


@dataclass
class SwitchLevelEstimate:
    """Result of a switch-level evaluation.

    Attributes:
        delay: estimated 50% propagation delay [s].
        elmore: raw Elmore delay of the pull path [s].
        path_length: number of series devices.
    """

    delay: float
    elmore: float
    path_length: int


class SwitchLevelTimer:
    """Crystal/IRSIM-style stage timing.

    Args:
        tech: process technology.
        library: table library (reused for path extraction only; the
            resistances come from the analytic ``R_eq``).
    """

    def __init__(self, tech: Technology,
                 library: Optional[TableModelLibrary] = None):
        self.tech = tech
        self.library = library or TableModelLibrary(tech)

    def path_to_rc(self, path: DischargePath) -> RCTree:
        """Convert a pull path into the equivalent RC ladder."""
        tree = RCTree("rail")
        parent = "rail"
        for device, name, cap in zip(path.devices, path.node_names,
                                     path.node_caps):
            if device.kind is DeviceKind.WIRE:
                r = device.resistance
            else:
                params = (self.tech.nmos
                          if device.kind is DeviceKind.NMOS
                          else self.tech.pmos)
                r = effective_resistance(params, device.w, device.l,
                                         path.vdd)
            tree.add_node(name, parent=parent, resistance=r, cap=cap)
            parent = name
        return tree

    def estimate(self, stage: LogicStage, output: str, direction: str,
                 inputs: Dict[str, SourceLike]) -> SwitchLevelEstimate:
        """Switch-level delay estimate for one output transition."""
        path = extract_path(stage, output, direction,
                            {k: as_source(v) for k, v in inputs.items()},
                            self.library)
        tree = self.path_to_rc(path)
        elmore = elmore_delays(tree)[output]
        return SwitchLevelEstimate(delay=math.log(2.0) * elmore,
                                   elmore=elmore,
                                   path_length=path.length)
