"""TETA-style successive-chords transient baseline.

TETA (Dartu & Pileggi) keeps an accurate, tabular device model and a
time-domain integrator, but replaces Newton-Raphson with *successive
chords* (SC) iteration: the admittance matrix is linearized once with
fixed chord conductances and reused every iteration and every timestep,
so each iteration is a cheap back-substitution instead of a fresh
matrix build + factorization.  Convergence is linear rather than
quadratic ("with a theoretically inferior convergence rate, SC can
evaluate each iteration much faster").

This implementation factors the chord matrix once per run (dense LU via
numpy) and iterates ``v <- v - A_chord^{-1} F(v)`` at every step.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
import scipy.linalg

from repro.circuit.netlist import LogicStage
from repro.devices.technology import Technology
from repro.spice.dc import logic_initial_condition
from repro.spice.mna import StageEquations
from repro.spice.results import SimulationStats, TransientResult
from repro.spice.sources import SourceLike, as_source


@dataclass
class SCOptions:
    """Controls for :class:`SuccessiveChordsSimulator`.

    Attributes:
        t_stop: analysis window [s].
        dt: fixed step [s].
        abstol: residual tolerance per step [A].
        max_iterations: SC iterations per step before giving up.
        chord_conductance: fixed chord value stamped for every device
            terminal pair [S]; ``None`` derives one from the on-current
            of a reference device.
    """

    t_stop: float = 500e-12
    dt: float = 1e-12
    abstol: float = 1e-8
    max_iterations: int = 200
    chord_conductance: Optional[float] = None


class SuccessiveChordsSimulator:
    """Fixed-matrix (successive chords) transient engine for one stage.

    Args:
        stage: the logic stage.
        tech: technology (golden device models).
        options: solver controls.
    """

    def __init__(self, stage: LogicStage, tech: Technology,
                 options: Optional[SCOptions] = None):
        self.stage = stage
        self.tech = tech
        self.options = options or SCOptions()
        self.equations = StageEquations(stage, tech,
                                        voltage_dependent_caps=False)

    def _chord_matrix(self, caps: np.ndarray) -> np.ndarray:
        """The constant SC iteration matrix: chords + C/dt diagonal."""
        eq = self.equations
        opts = self.options
        g_chord = opts.chord_conductance
        if g_chord is None:
            # A representative on-conductance: Ion/vdd of a reference
            # NMOS at full drive.
            from repro.devices.mosfet import nmos_model

            model = nmos_model(self.tech)
            ion = model.ids(2.0 * self.tech.wmin, self.tech.lmin,
                            self.tech.vdd, self.tech.vdd, 0.0)
            g_chord = ion / self.tech.vdd
        # Build a conservative chord stamp: every transistor couples its
        # terminals with g_chord; wires keep their exact conductance.
        matrix = np.zeros((eq.n, eq.n))
        vdd = self.stage.vdd
        probe = np.full(eq.n, 0.5 * vdd)
        # Use the structural Jacobian at mid-rail to find the coupling
        # pattern, then overwrite transistor couplings with the chord.
        levels = {name: 0.5 * vdd for name in
                  {e.gate_input for e in self.stage.transistors}}
        _, pattern = eq.static_residual(probe, levels)
        for a in range(eq.n):
            for b in range(eq.n):
                if a == b:
                    continue
                if pattern[a, b] != 0.0:
                    matrix[a, b] = -g_chord
        row_sums = -matrix.sum(axis=1)
        matrix[np.diag_indices(eq.n)] = row_sums + g_chord
        matrix[np.diag_indices(eq.n)] += caps / self.options.dt
        return matrix

    def run(self, inputs: Dict[str, SourceLike],
            initial: Optional[Dict[str, float]] = None) -> TransientResult:
        """Run the SC transient analysis (backward Euler)."""
        eq = self.equations
        opts = self.options
        sources = {name: as_source(src) for name, src in inputs.items()}
        levels = eq.gate_values(sources, 0.0)
        seed = logic_initial_condition(self.stage, levels)
        if initial:
            seed.update(initial)
        v = np.array([seed[name] for name in eq.node_names])

        n_steps = int(round(opts.t_stop / opts.dt))
        times = np.linspace(0.0, n_steps * opts.dt, n_steps + 1)
        history = np.empty((n_steps + 1, eq.n))
        history[0] = v
        caps = eq.node_capacitances(v)
        chord = self._chord_matrix(caps)
        lu, piv = scipy.linalg.lu_factor(chord)

        stats = SimulationStats()
        eq.device_evaluations = 0
        gate_prev = eq.gate_values(sources, 0.0)
        t_start = time.perf_counter()
        for step in range(1, n_steps + 1):
            t_new = times[step]
            gates = eq.gate_values(sources, t_new)
            v_old = v.copy()
            # Gate-coupling (Miller) injection from moving inputs, as in
            # the Newton-Raphson engine.
            miller = np.zeros(eq.n)
            for idx, gate, cap in eq.gate_couplings:
                dvg = (gates[gate] - gate_prev[gate]) / opts.dt
                miller[idx] -= cap * dvg
            x = v.copy()
            for iteration in range(opts.max_iterations):
                f_static, _ = eq.static_residual(x, gates)
                residual = (f_static + caps * (x - v_old) / opts.dt
                            + miller)
                if float(np.max(np.abs(residual))) < opts.abstol:
                    break
                x = x - scipy.linalg.lu_solve((lu, piv), residual)
                stats.newton_iterations += 1
            gate_prev = gates
            v = np.clip(x, -2.0, self.stage.vdd + 2.0)
            history[step] = v
            stats.steps += 1
        stats.wall_time = time.perf_counter() - t_start
        stats.device_evaluations = eq.device_evaluations

        voltages = {name: history[:, eq.node_index(name)]
                    for name in eq.node_names}
        return TransientResult(times=times, voltages=voltages,
                               stats=stats, label="sc")
