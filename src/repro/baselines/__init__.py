"""Related-work baselines (paper Section II).

* :mod:`repro.baselines.switch_level` — Crystal/IRSIM-style switched
  resistor + Elmore delay: the first fast-simulation methodology the
  paper describes ("model the transistors as switched resistors.  A
  logic stage can then be reduced into an RC network, for which Elmore
  delay is computed").
* :mod:`repro.baselines.sc_iteration` — a TETA-style transient solver:
  accurate (tabular) device models with time-domain integration, but
  Newton-Raphson replaced by successive-chords iteration with a constant
  admittance matrix.
"""

from repro.baselines.switch_level import SwitchLevelTimer, effective_resistance
from repro.baselines.sc_iteration import SuccessiveChordsSimulator

__all__ = [
    "SwitchLevelTimer",
    "effective_resistance",
    "SuccessiveChordsSimulator",
]
