"""Logic-stage graph model (paper Definition 1).

A :class:`LogicStage` is a polar directed graph: nodes are circuit nodes
(the supply ``VDD`` is the polar source, ground ``GND`` the polar sink),
edges are circuit elements characterized by geometry, transistor edges
carry a gate input signal, and a subset of nodes are stage outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.circuit.elements import DeviceKind

#: Reserved node names for the polar source and sink.
VDD_NODE = "VDD"
GND_NODE = "GND"


@dataclass
class CircuitNode:
    """A circuit node.

    Attributes:
        name: unique node name within the stage.
        incoming: edges whose ``snk`` is this node.
        outgoing: edges whose ``src`` is this node.
        load_cap: lumped external load capacitance to ground [F]
            (``C_L`` in the paper's waveform-evaluation problem).
        is_output: True if the node is a stage output.
    """

    name: str
    incoming: List["CircuitEdge"] = field(default_factory=list)
    outgoing: List["CircuitEdge"] = field(default_factory=list)
    load_cap: float = 0.0
    is_output: bool = False

    @property
    def edges(self) -> List["CircuitEdge"]:
        """All incident edges."""
        return self.incoming + self.outgoing

    @property
    def degree(self) -> int:
        return len(self.incoming) + len(self.outgoing)

    def other_edges(self, edge: "CircuitEdge") -> List["CircuitEdge"]:
        """Incident edges excluding ``edge``."""
        return [e for e in self.edges if e is not edge]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CircuitNode({self.name!r}, degree={self.degree})"


@dataclass
class CircuitEdge:
    """A circuit element: NMOS, PMOS or wire segment.

    Attributes:
        name: unique element name within the stage.
        kind: element type.
        src: source-side node (paper convention: the node nearer the
            polar source for pull-up elements; purely structural).
        snk: sink-side node.
        w: width [m].
        l: length [m] (channel length for transistors, wire length for
            wires).
        gate_input: gate input-signal name (transistors only).
    """

    name: str
    kind: DeviceKind
    src: CircuitNode
    snk: CircuitNode
    w: float
    l: float
    gate_input: Optional[str] = None

    def other(self, node: CircuitNode) -> CircuitNode:
        """The terminal opposite ``node``."""
        if node is self.src:
            return self.snk
        if node is self.snk:
            return self.src
        raise ValueError(f"node {node.name!r} is not a terminal of {self.name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        gate = f", gate={self.gate_input!r}" if self.gate_input else ""
        return (f"CircuitEdge({self.name!r}, {self.kind.value}, "
                f"{self.src.name}->{self.snk.name}{gate})")


class LogicStage:
    """A CMOS logic stage: polar directed graph ``(N, E, s, t, I, O)``.

    Args:
        name: stage name.
        vdd: supply voltage of the stage [V].

    The polar source (``VDD``) and sink (``GND``) nodes are created
    automatically.
    """

    def __init__(self, name: str, vdd: float):
        if vdd <= 0:
            raise ValueError("vdd must be positive")
        self.name = name
        self.vdd = vdd
        self._nodes: Dict[str, CircuitNode] = {}
        self._edges: Dict[str, CircuitEdge] = {}
        self.source = self.add_node(VDD_NODE)
        self.sink = self.add_node(GND_NODE)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, name: str, load_cap: float = 0.0) -> CircuitNode:
        """Add (or fetch) a node by name."""
        if name in self._nodes:
            node = self._nodes[name]
            node.load_cap += load_cap
            return node
        node = CircuitNode(name=name, load_cap=load_cap)
        self._nodes[name] = node
        return node

    def _add_edge(self, name: str, kind: DeviceKind, src: str, snk: str,
                  w: float, l: float,
                  gate_input: Optional[str]) -> CircuitEdge:
        if name in self._edges:
            raise ValueError(f"duplicate edge name {name!r}")
        if w <= 0 or l <= 0:
            raise ValueError(f"edge {name!r}: geometry must be positive")
        if kind.is_transistor and not gate_input:
            raise ValueError(f"transistor {name!r} needs a gate input")
        if not kind.is_transistor and gate_input:
            raise ValueError(f"wire {name!r} cannot have a gate input")
        src_node = self.add_node(src)
        snk_node = self.add_node(snk)
        if src_node is snk_node:
            raise ValueError(f"edge {name!r} is a self-loop on {src!r}")
        edge = CircuitEdge(name=name, kind=kind, src=src_node, snk=snk_node,
                           w=w, l=l, gate_input=gate_input)
        src_node.outgoing.append(edge)
        snk_node.incoming.append(edge)
        self._edges[name] = edge
        return edge

    def add_nmos(self, name: str, src: str, snk: str, gate: str,
                 w: float, l: float) -> CircuitEdge:
        """Add an NMOS transistor between nodes ``src`` and ``snk``."""
        return self._add_edge(name, DeviceKind.NMOS, src, snk, w, l, gate)

    def add_pmos(self, name: str, src: str, snk: str, gate: str,
                 w: float, l: float) -> CircuitEdge:
        """Add a PMOS transistor between nodes ``src`` and ``snk``."""
        return self._add_edge(name, DeviceKind.PMOS, src, snk, w, l, gate)

    def add_wire(self, name: str, src: str, snk: str,
                 w: float, l: float) -> CircuitEdge:
        """Add a wire segment between nodes ``src`` and ``snk``."""
        return self._add_edge(name, DeviceKind.WIRE, src, snk, w, l, None)

    def mark_output(self, node_name: str) -> CircuitNode:
        """Designate a node as a stage output."""
        node = self.node(node_name)
        node.is_output = True
        return node

    def set_load(self, node_name: str, cap: float) -> None:
        """Set the external load capacitance of a node [F]."""
        if cap < 0:
            raise ValueError("load capacitance must be non-negative")
        self.node(node_name).load_cap = cap

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def node(self, name: str) -> CircuitNode:
        """Fetch a node by name (KeyError if absent)."""
        return self._nodes[name]

    def edge(self, name: str) -> CircuitEdge:
        """Fetch an edge by name (KeyError if absent)."""
        return self._edges[name]

    @property
    def nodes(self) -> List[CircuitNode]:
        """All nodes, including the polar source and sink."""
        return list(self._nodes.values())

    @property
    def internal_nodes(self) -> List[CircuitNode]:
        """Nodes excluding the polar source and sink."""
        return [n for n in self._nodes.values()
                if n is not self.source and n is not self.sink]

    @property
    def edges(self) -> List[CircuitEdge]:
        return list(self._edges.values())

    @property
    def transistors(self) -> List[CircuitEdge]:
        return [e for e in self._edges.values() if e.kind.is_transistor]

    @property
    def wires(self) -> List[CircuitEdge]:
        return [e for e in self._edges.values()
                if e.kind is DeviceKind.WIRE]

    @property
    def inputs(self) -> List[str]:
        """Distinct gate input-signal names, in first-use order."""
        seen: Dict[str, None] = {}
        for edge in self._edges.values():
            if edge.gate_input is not None:
                seen.setdefault(edge.gate_input, None)
        return list(seen)

    @property
    def outputs(self) -> List[CircuitNode]:
        return [n for n in self._nodes.values() if n.is_output]

    def edges_with_gate(self, input_name: str) -> List[CircuitEdge]:
        """All transistors driven by a given input signal."""
        return [e for e in self._edges.values()
                if e.gate_input == input_name]

    def __iter__(self) -> Iterator[CircuitEdge]:
        return iter(self._edges.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"LogicStage({self.name!r}, nodes={len(self._nodes)}, "
                f"edges={len(self._edges)}, inputs={self.inputs}, "
                f"outputs={[n.name for n in self.outputs]})")

    def to_networkx(self):
        """Export the stage as a ``networkx.MultiDiGraph`` (for analysis)."""
        import networkx as nx

        graph = nx.MultiDiGraph(name=self.name)
        for node in self._nodes.values():
            graph.add_node(node.name, load_cap=node.load_cap,
                           is_output=node.is_output)
        for edge in self._edges.values():
            graph.add_edge(edge.src.name, edge.snk.name, key=edge.name,
                           kind=edge.kind.value, w=edge.w, l=edge.l,
                           gate_input=edge.gate_input)
        return graph
