"""Channel-connected component extraction (logic-stage partitioning).

The paper's introduction: "Circuit partitioning is used so that
differential equation solving is confined within small circuit
partitions, called logic stages.  Typically, a logic stage is a set of
channel-connected transistors and wire segments."  And: "a logic stage
has to be constructed dynamically, depending on how it is connected to
the rest of the circuit" — a cell output feeding a pass transistor's
diffusion merges both cells into one stage (Example 1/2).

:func:`extract_stages` performs that partitioning on a flat transistor
netlist: nets connected through source/drain terminals or wires belong
to one stage; gate terminals are the cut points between stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import networkx as nx

from repro.circuit.netlist import GND_NODE, VDD_NODE, LogicStage


@dataclass
class FlatTransistor:
    """One transistor of a flat netlist (nets referenced by name)."""

    name: str
    polarity: str
    gate: str
    src: str
    snk: str
    w: float
    l: float

    def __post_init__(self) -> None:
        if self.polarity not in ("n", "p"):
            raise ValueError(f"{self.name}: polarity must be 'n' or 'p'")


@dataclass
class FlatWire:
    """One wire segment of a flat netlist."""

    name: str
    a: str
    b: str
    w: float
    l: float


class FlatNetlist:
    """A flat transistor-level netlist prior to stage partitioning.

    Args:
        name: design name.
        vdd: supply voltage [V].
    """

    def __init__(self, name: str, vdd: float):
        self.name = name
        self.vdd = vdd
        self.transistors: List[FlatTransistor] = []
        self.wires: List[FlatWire] = []
        self.primary_inputs: Set[str] = set()
        self.primary_outputs: Set[str] = set()
        self.load_caps: Dict[str, float] = {}

    def add_nmos(self, name: str, gate: str, src: str, snk: str,
                 w: float, l: float) -> None:
        self.transistors.append(
            FlatTransistor(name, "n", gate, src, snk, w, l))

    def add_pmos(self, name: str, gate: str, src: str, snk: str,
                 w: float, l: float) -> None:
        self.transistors.append(
            FlatTransistor(name, "p", gate, src, snk, w, l))

    def add_wire(self, name: str, a: str, b: str, w: float, l: float) -> None:
        self.wires.append(FlatWire(name, a, b, w, l))

    def mark_input(self, net: str) -> None:
        self.primary_inputs.add(net)

    def mark_output(self, net: str) -> None:
        self.primary_outputs.add(net)

    def set_load(self, net: str, cap: float) -> None:
        self.load_caps[net] = self.load_caps.get(net, 0.0) + cap

    @property
    def nets(self) -> List[str]:
        """Every net referenced anywhere, in first-use order.

        Insertion-ordered by construction (a dict, not a set) so any
        consumer iterating it — report builders, cache keys — is stable
        without having to remember to sort.
        """
        nets: Dict[str, None] = {}
        for t in self.transistors:
            for net in (t.gate, t.src, t.snk):
                nets.setdefault(net, None)
        for w in self.wires:
            for net in (w.a, w.b):
                nets.setdefault(net, None)
        return list(nets)


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def find(self, item: str) -> str:
        parent = self._parent.setdefault(item, item)
        if parent != item:
            parent = self.find(parent)
            self._parent[item] = parent
        return parent

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


@dataclass
class StageGraph:
    """The stage-level view of a design after partitioning.

    Attributes:
        name: design name.
        stages: extracted logic stages.
        stage_of_net: maps each non-supply channel net to its stage.
        driver_of: maps a net to the stage that produces it (if any).
        graph: ``networkx.DiGraph`` over stage names; an edge A->B means
            an output net of A drives a gate input of B.
    """

    name: str
    stages: List[LogicStage]
    stage_of_net: Dict[str, LogicStage]
    driver_of: Dict[str, LogicStage] = field(default_factory=dict)
    graph: nx.DiGraph = field(default_factory=nx.DiGraph)

    def stage(self, name: str) -> LogicStage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(name)

    def topological_order(self) -> List[LogicStage]:
        """Stages in evaluation order (inputs before consumers).

        Raises:
            nx.NetworkXUnfeasible: on combinational feedback loops.
        """
        order = list(nx.topological_sort(self.graph))
        by_name = {s.name: s for s in self.stages}
        return [by_name[n] for n in order]


def extract_stages(netlist: FlatNetlist,
                   tech=None) -> StageGraph:
    """Partition a flat netlist into channel-connected logic stages.

    Nets are merged when connected through transistor source/drain
    terminals or through wire segments; the supply nets never merge
    components (they touch every stage).  Each component becomes a
    :class:`LogicStage`; its inputs are the gate nets of its transistors,
    its outputs the nets that drive other stages' gates or are marked as
    primary outputs.

    Args:
        netlist: the flat design.
        tech: optional :class:`~repro.devices.technology.Technology`;
            when given, each stage output's load capacitance includes
            the gate capacitance of every consumer transistor (the
            inter-stage loading a timing run needs).
    """
    supply = {VDD_NODE, GND_NODE}
    uf = _UnionFind()
    for t in netlist.transistors:
        if t.src not in supply and t.snk not in supply:
            uf.union(t.src, t.snk)
        else:
            # Still register the non-supply terminal as a component seed.
            for net in (t.src, t.snk):
                if net not in supply:
                    uf.find(net)
    for w in netlist.wires:
        if w.a in supply or w.b in supply:
            raise ValueError(
                f"wire {w.name!r} touches a supply net; model supply "
                "routing as load capacitance instead")
        uf.union(w.a, w.b)

    # Group devices by the component of their channel nets.
    def component_of(*nets: str) -> Optional[str]:
        for net in nets:
            if net not in supply:
                return uf.find(net)
        return None

    members: Dict[str, Dict[str, list]] = {}
    for t in netlist.transistors:
        comp = component_of(t.src, t.snk)
        if comp is None:
            raise ValueError(
                f"transistor {t.name!r} connects supply to supply")
        members.setdefault(comp, {"t": [], "w": []})["t"].append(t)
    for w in netlist.wires:
        comp = component_of(w.a, w.b)
        members.setdefault(comp, {"t": [], "w": []})["w"].append(w)

    stages: List[LogicStage] = []
    stage_of_net: Dict[str, LogicStage] = {}
    for index, comp in enumerate(sorted(members)):
        stage = LogicStage(name=f"{netlist.name}.stage{index}",
                           vdd=netlist.vdd)
        for t in members[comp]["t"]:
            adder = stage.add_nmos if t.polarity == "n" else stage.add_pmos
            adder(t.name, src=t.src, snk=t.snk, gate=t.gate, w=t.w, l=t.l)
        for w in members[comp]["w"]:
            stage.add_wire(w.name, src=w.a, snk=w.b, w=w.w, l=w.l)
        for node in stage.internal_nodes:
            stage_of_net[node.name] = stage
            if node.name in netlist.load_caps:
                node.load_cap += netlist.load_caps[node.name]
        stages.append(stage)

    # Wire up outputs and the stage-level graph.
    gate_uses: Dict[str, List[LogicStage]] = {}
    for stage in stages:
        for input_net in stage.inputs:
            gate_uses.setdefault(input_net, []).append(stage)

    graph = nx.DiGraph()
    driver_of: Dict[str, LogicStage] = {}
    for stage in stages:
        graph.add_node(stage.name)
    for net, stage in stage_of_net.items():
        drives = gate_uses.get(net, [])
        is_primary_out = net in netlist.primary_outputs
        if drives or is_primary_out:
            stage.mark_output(net)
            driver_of[net] = stage
        for consumer in drives:
            if consumer is not stage:
                graph.add_edge(stage.name, consumer.name)
        if tech is not None and drives:
            # Inter-stage loading: consumer gate caps load this output.
            from repro.devices.capacitance import gate_capacitance

            extra = 0.0
            for consumer in drives:
                for edge in consumer.edges_with_gate(net):
                    params = (tech.nmos if edge.kind.polarity == "n"
                              else tech.pmos)
                    extra += gate_capacitance(params, edge.w, edge.l)
            stage.node(net).load_cap += extra

    return StageGraph(name=netlist.name, stages=stages,
                      stage_of_net=stage_of_net, driver_of=driver_of,
                      graph=graph)
