"""Circuit-model substrate: logic stages as polar directed graphs.

Implements the paper's Definition 1: a CMOS logic stage is a polar
directed graph ``(N, E, s, t, I, O)`` whose vertices are circuit nodes and
whose edges are circuit elements (NMOS, PMOS or wire segments), with the
power supply as source, ground as sink, gate-driven edges as inputs and
designated nodes as outputs.

:mod:`repro.circuit.builders` constructs every circuit the paper
evaluates: minimum-sized gates, randomly sized NMOS stacks, the
Manchester carry chain (Fig. 2) and the memory decoder tree (Fig. 3).
:mod:`repro.circuit.stage` extracts channel-connected logic stages from a
flat transistor netlist, the partitioning step the paper's introduction
describes.
"""

from repro.circuit.elements import DeviceKind
from repro.circuit.netlist import CircuitEdge, CircuitNode, LogicStage
from repro.circuit.stage import FlatNetlist, StageGraph, extract_stages
from repro.circuit.validate import StageValidationError, validate_stage
from repro.circuit import builders

__all__ = [
    "DeviceKind",
    "CircuitEdge",
    "CircuitNode",
    "LogicStage",
    "FlatNetlist",
    "StageGraph",
    "extract_stages",
    "StageValidationError",
    "validate_stage",
    "builders",
]
