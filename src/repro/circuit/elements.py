"""Circuit element kinds (paper Definition 1: ``Device = {nmos, pmos, wire}``)."""

from __future__ import annotations

import enum


class DeviceKind(enum.Enum):
    """The three circuit-element types of a logic stage."""

    NMOS = "nmos"
    PMOS = "pmos"
    WIRE = "wire"

    @property
    def is_transistor(self) -> bool:
        """True for NMOS/PMOS, False for wire segments."""
        return self is not DeviceKind.WIRE

    @property
    def polarity(self) -> str:
        """``"n"`` or ``"p"`` for transistors.

        Raises:
            ValueError: for wire segments, which have no polarity.
        """
        if self is DeviceKind.NMOS:
            return "n"
        if self is DeviceKind.PMOS:
            return "p"
        raise ValueError("wire segments have no polarity")
