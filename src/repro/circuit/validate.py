"""Structural validation of logic stages."""

from __future__ import annotations

from typing import List

from repro.circuit.netlist import LogicStage


class StageValidationError(ValueError):
    """A logic stage violates the polar-graph structural rules."""


def validate_stage(stage: LogicStage, require_outputs: bool = True) -> None:
    """Check the structural invariants of a logic stage.

    Verifies that every internal node is connected, that the graph is a
    single connected component containing both poles, that transistors
    have gate inputs, and (optionally) that at least one output is
    marked.

    Raises:
        StageValidationError: describing every violation found.
    """
    problems: List[str] = []

    if not stage.edges:
        problems.append("stage has no circuit elements")

    for node in stage.internal_nodes:
        if node.degree == 0:
            problems.append(f"node {node.name!r} is dangling")

    for edge in stage.edges:
        if edge.kind.is_transistor and not edge.gate_input:
            problems.append(f"transistor {edge.name!r} has no gate input")
        if edge.w <= 0 or edge.l <= 0:
            problems.append(f"edge {edge.name!r} has non-positive geometry")

    # Connectivity: every node with incident edges must be reachable from
    # one of the poles through element edges (ignoring direction).
    if stage.edges:
        seen = set()
        frontier = [stage.source, stage.sink]
        while frontier:
            node = frontier.pop()
            if node.name in seen:
                continue
            seen.add(node.name)
            for edge in node.edges:
                frontier.append(edge.other(node))
        for node in stage.nodes:
            if node.degree > 0 and node.name not in seen:
                problems.append(
                    f"node {node.name!r} unreachable from the poles")

    if require_outputs and not stage.outputs:
        problems.append("stage has no marked outputs")

    if problems:
        raise StageValidationError(
            f"stage {stage.name!r}: " + "; ".join(problems))
