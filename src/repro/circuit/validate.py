"""Structural validation of logic stages.

Since the introduction of :mod:`repro.lint` this module is a thin,
backward-compatible adapter: the structural rules themselves live in
the ERC rule pack (:mod:`repro.lint.rules_erc`) and are shared with the
``repro lint`` CLI and the solver preflight hooks.  ``validate_stage``
runs them on a single stage and raises a :class:`StageValidationError`
formatting every error-severity diagnostic, exactly as it always did.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.circuit.netlist import LogicStage


class StageValidationError(ValueError):
    """A logic stage violates the polar-graph structural rules.

    Attributes:
        diagnostics: the structured lint findings behind the message
            (:class:`repro.lint.Diagnostic` records, errors first).
    """

    def __init__(self, message: str, diagnostics: Sequence = ()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)


def lint_stage_structure(stage: LogicStage,
                         require_outputs: bool = True):
    """Run the structural ERC rules on one stage.

    Returns:
        The :class:`repro.lint.LintReport` (all severities; callers
        decide what to do with warnings).
    """
    from repro.lint import LintContext, LintRunner

    disable = () if require_outputs else ("ERC005",)
    runner = LintRunner(packs=("erc",), disable=disable)
    return runner.run(LintContext.from_stage(stage))


def validate_stage(stage: LogicStage, require_outputs: bool = True) -> None:
    """Check the structural invariants of a logic stage.

    Verifies that every internal node is connected, that the graph is a
    single connected component containing both poles, that transistors
    have gate inputs, and (optionally) that at least one output is
    marked.

    Raises:
        StageValidationError: describing every violation found; its
            ``diagnostics`` attribute carries the structured records.
    """
    report = lint_stage_structure(stage, require_outputs=require_outputs)
    errors = report.errors
    if errors:
        problems: List[str] = [d.message for d in errors]
        raise StageValidationError(
            f"stage {stage.name!r}: " + "; ".join(problems), errors)
