"""Builders for every circuit the paper evaluates.

* :func:`inverter`, :func:`nand_gate`, :func:`nor_gate` — the standard
  CMOS gates of Table I.
* :func:`nmos_stack` — the randomly sized K-transistor discharge stacks
  of Table II and Figs. 6/7/9.
* :func:`manchester_carry_chain` — Fig. 2; its longest path is the
  6-NMOS stack whose waveforms the paper plots in Fig. 9.
* :func:`decoder_tree` — Fig. 3; a binary pass-transistor tree whose
  inter-level wires double in length at every level.
* :func:`pass_transistor_netlist` — Fig. 1 (Example 1): a NAND gate whose
  output feeds a pass transistor through a wire, the motivating case for
  dynamic stage construction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.circuit.netlist import GND_NODE, VDD_NODE, LogicStage
from repro.circuit.stage import FlatNetlist
from repro.devices.technology import Technology

#: Default lumped output load [F], a few gate-inputs' worth.
DEFAULT_LOAD = 5e-15


def _min_widths(tech: Technology) -> tuple:
    """Minimum-size gate widths (wn, wp), PMOS upsized for symmetry."""
    wn = 2.0 * tech.wmin
    wp = 2.0 * wn
    return wn, wp


def inverter(tech: Technology, wn: Optional[float] = None,
             wp: Optional[float] = None,
             load: float = DEFAULT_LOAD) -> LogicStage:
    """A CMOS inverter: input ``a``, output ``out``."""
    wn_def, wp_def = _min_widths(tech)
    wn = wn_def if wn is None else wn
    wp = wp_def if wp is None else wp
    stage = LogicStage("inv", vdd=tech.vdd)
    stage.add_pmos("MP", src=VDD_NODE, snk="out", gate="a",
                   w=wp, l=tech.lmin)
    stage.add_nmos("MN", src="out", snk=GND_NODE, gate="a",
                   w=wn, l=tech.lmin)
    stage.mark_output("out")
    stage.set_load("out", load)
    return stage


def nand_gate(tech: Technology, n_inputs: int = 2,
              wn: Optional[float] = None, wp: Optional[float] = None,
              load: float = DEFAULT_LOAD) -> LogicStage:
    """An ``n_inputs``-input NAND: inputs ``a0..a{n-1}``, output ``out``.

    The NMOS stack is ordered with ``a0`` at the bottom (nearest ground),
    so the stage's worst-case discharge is triggered by ``a0`` switching
    last — the scenario QWM evaluates.
    """
    if n_inputs < 2:
        raise ValueError("nand_gate needs at least 2 inputs")
    wn_def, wp_def = _min_widths(tech)
    wn = wn_def if wn is None else wn
    wp = wp_def if wp is None else wp
    stage = LogicStage(f"nand{n_inputs}", vdd=tech.vdd)
    # NMOS series stack from out down to ground.
    upper = "out"
    for i in range(n_inputs - 1, 0, -1):
        lower = f"n{i}"
        stage.add_nmos(f"MN{i}", src=upper, snk=lower, gate=f"a{i}",
                       w=wn, l=tech.lmin)
        upper = lower
    stage.add_nmos("MN0", src=upper, snk=GND_NODE, gate="a0",
                   w=wn, l=tech.lmin)
    # PMOS devices in parallel.
    for i in range(n_inputs):
        stage.add_pmos(f"MP{i}", src=VDD_NODE, snk="out", gate=f"a{i}",
                       w=wp, l=tech.lmin)
    stage.mark_output("out")
    stage.set_load("out", load)
    return stage


def nor_gate(tech: Technology, n_inputs: int = 2,
             wn: Optional[float] = None, wp: Optional[float] = None,
             load: float = DEFAULT_LOAD) -> LogicStage:
    """An ``n_inputs``-input NOR: inputs ``a0..a{n-1}``, output ``out``."""
    if n_inputs < 2:
        raise ValueError("nor_gate needs at least 2 inputs")
    wn_def, wp_def = _min_widths(tech)
    wn = wn_def if wn is None else wn
    wp = (wp_def * n_inputs) if wp is None else wp
    stage = LogicStage(f"nor{n_inputs}", vdd=tech.vdd)
    upper = VDD_NODE
    for i in range(n_inputs - 1):
        lower = f"p{i}"
        stage.add_pmos(f"MP{i}", src=upper, snk=lower, gate=f"a{i}",
                       w=wp, l=tech.lmin)
        upper = lower
    stage.add_pmos(f"MP{n_inputs - 1}", src=upper, snk="out",
                   gate=f"a{n_inputs - 1}", w=wp, l=tech.lmin)
    for i in range(n_inputs):
        stage.add_nmos(f"MN{i}", src="out", snk=GND_NODE, gate=f"a{i}",
                       w=wn, l=tech.lmin)
    stage.mark_output("out")
    stage.set_load("out", load)
    return stage


def nmos_stack(tech: Technology, length: int,
               widths: Optional[Sequence[float]] = None,
               load: float = DEFAULT_LOAD,
               rng: Optional[np.random.Generator] = None) -> LogicStage:
    """A K-transistor NMOS discharge stack (paper Fig. 6).

    Transistor ``M1`` (gate ``g1``) sits at the bottom next to ground;
    ``M{K}`` connects internal node ``n{K-1}`` to the output.  When
    ``widths`` is omitted they are drawn uniformly from
    ``[2*wmin, 8*wmin]`` — the paper's "randomly chosen transistor
    widths" — using ``rng``.

    Args:
        tech: technology.
        length: number of series transistors K (>= 1).
        widths: per-transistor widths, bottom-up [m].
        load: output load capacitance [F].
        rng: random generator for width selection.
    """
    if length < 1:
        raise ValueError("stack length must be >= 1")
    if widths is None:
        rng = np.random.default_rng(0) if rng is None else rng
        widths = rng.uniform(2.0 * tech.wmin, 8.0 * tech.wmin, size=length)
    widths = list(widths)
    if len(widths) != length:
        raise ValueError(f"expected {length} widths, got {len(widths)}")

    stage = LogicStage(f"stack{length}", vdd=tech.vdd)
    lower = GND_NODE
    for k in range(1, length + 1):
        upper = "out" if k == length else f"n{k}"
        stage.add_nmos(f"M{k}", src=upper, snk=lower, gate=f"g{k}",
                       w=widths[k - 1], l=tech.lmin)
        lower = upper
    stage.mark_output("out")
    stage.set_load("out", load)
    return stage


def manchester_carry_chain(tech: Technology, bits: int = 4,
                           wn: Optional[float] = None,
                           wp: Optional[float] = None,
                           load: float = DEFAULT_LOAD) -> LogicStage:
    """A Manchester carry chain (paper Fig. 2).

    Per bit slice ``i``: a pass NMOS gated by propagate ``P{i}`` connects
    carry node ``c{i}`` to ``c{i+1}``; a generate NMOS gated by ``G{i}``
    pulls ``c{i+1}`` to ground; a precharge PMOS gated by ``phi``
    precharges ``c{i+1}``.  The carry-in node ``c0`` has its own
    precharge and a discharge NMOS gated by ``cin_pull``.  All carry
    nodes are channel-connected — the whole chain is one logic stage,
    which is exactly the paper's point (Example 2).

    The worst-case discharge path (carry ripples from ``c0`` to
    ``c{bits}``) is a series chain of ``bits + 1`` NMOS devices; with
    ``bits=5`` this is the paper's 6-NMOS stack of Fig. 9.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    wn_def, wp_def = _min_widths(tech)
    wn = wn_def if wn is None else wn
    wp = wp_def if wp is None else wp
    stage = LogicStage(f"manchester{bits}", vdd=tech.vdd)

    stage.add_pmos("MPRE0", src=VDD_NODE, snk="c0", gate="phi",
                   w=wp, l=tech.lmin)
    stage.add_nmos("MCIN", src="c0", snk=GND_NODE, gate="cin_pull",
                   w=wn, l=tech.lmin)
    for i in range(bits):
        carry_in, carry_out = f"c{i}", f"c{i + 1}"
        stage.add_nmos(f"MPASS{i}", src=carry_out, snk=carry_in,
                       gate=f"P{i}", w=wn, l=tech.lmin)
        stage.add_nmos(f"MGEN{i}", src=carry_out, snk=GND_NODE,
                       gate=f"G{i}", w=wn, l=tech.lmin)
        stage.add_pmos(f"MPRE{i + 1}", src=VDD_NODE, snk=carry_out,
                       gate="phi", w=wp, l=tech.lmin)
        stage.mark_output(carry_out)
        stage.set_load(carry_out, load)
    return stage


def decoder_tree(tech: Technology, levels: int = 3,
                 wn: Optional[float] = None,
                 unit_wire_length: float = 20e-6,
                 wire_width: Optional[float] = None,
                 load: float = DEFAULT_LOAD) -> LogicStage:
    """A memory decoder tree (paper Fig. 3).

    A binary tree of pass NMOS devices: the root connects to ground
    through an enable NMOS gated by ``phi``; at level ``j`` each vertex
    fans out to two children through transistors gated by address bit
    ``A{j}`` / ``A{j}b``, and each child connects onward through a wire
    segment whose length is ``unit_wire_length * 2**j`` — the
    exponentially growing diffusion-connecting wires the paper draws in
    bold.  The leaves are the decoder outputs (wordline selects).
    """
    if levels < 1:
        raise ValueError("levels must be >= 1")
    wn_def, _ = _min_widths(tech)
    wn = wn_def if wn is None else wn
    wire_width = tech.wmin if wire_width is None else wire_width
    stage = LogicStage(f"decoder{levels}", vdd=tech.vdd)
    stage.add_nmos("MEN", src="t", snk=GND_NODE, gate="phi",
                   w=2.0 * wn, l=tech.lmin)

    frontier = ["t"]
    for level in range(levels):
        wire_len = unit_wire_length * (2 ** level)
        next_frontier: List[str] = []
        for parent in frontier:
            for branch, gate in (("0", f"A{level}b"), ("1", f"A{level}")):
                suffix = parent[1:] + branch
                drain = f"d{suffix}"
                child = f"t{suffix}"
                stage.add_nmos(f"M{suffix}", src=drain, snk=parent,
                               gate=gate, w=wn, l=tech.lmin)
                stage.add_wire(f"W{suffix}", src=child, snk=drain,
                               w=wire_width, l=wire_len)
                next_frontier.append(child)
        frontier = next_frontier

    for leaf in frontier:
        stage.mark_output(leaf)
        stage.set_load(leaf, load)
    return stage


def aoi21_gate(tech: Technology, wn: Optional[float] = None,
               wp: Optional[float] = None,
               load: float = DEFAULT_LOAD) -> LogicStage:
    """An AOI21 gate: ``out = not(a0 and a1 or a2)``.

    A branching pull network: the NMOS side is (a0 series a1) parallel
    a2; the PMOS side is (a0 parallel a1) series a2.  Exercises path
    extraction through parallel branches, where off-branch devices
    contribute junction load only.
    """
    wn_def, wp_def = _min_widths(tech)
    wn = wn_def if wn is None else wn
    wp = wp_def if wp is None else wp
    stage = LogicStage("aoi21", vdd=tech.vdd)
    # NMOS: a0-a1 stack parallel to a2.
    stage.add_nmos("MN1", src="out", snk="n1", gate="a1",
                   w=wn, l=tech.lmin)
    stage.add_nmos("MN0", src="n1", snk=GND_NODE, gate="a0",
                   w=wn, l=tech.lmin)
    stage.add_nmos("MN2", src="out", snk=GND_NODE, gate="a2",
                   w=wn, l=tech.lmin)
    # PMOS: (a0 || a1) in series with a2.
    stage.add_pmos("MP0", src=VDD_NODE, snk="p1", gate="a0",
                   w=wp, l=tech.lmin)
    stage.add_pmos("MP1", src=VDD_NODE, snk="p1", gate="a1",
                   w=wp, l=tech.lmin)
    stage.add_pmos("MP2", src="p1", snk="out", gate="a2",
                   w=wp, l=tech.lmin)
    stage.mark_output("out")
    stage.set_load("out", load)
    return stage


def oai21_gate(tech: Technology, wn: Optional[float] = None,
               wp: Optional[float] = None,
               load: float = DEFAULT_LOAD) -> LogicStage:
    """An OAI21 gate: ``out = not((a0 or a1) and a2)``."""
    wn_def, wp_def = _min_widths(tech)
    wn = wn_def if wn is None else wn
    wp = wp_def if wp is None else wp
    stage = LogicStage("oai21", vdd=tech.vdd)
    # NMOS: (a0 || a1) in series with a2.
    stage.add_nmos("MN2", src="out", snk="n1", gate="a2",
                   w=wn, l=tech.lmin)
    stage.add_nmos("MN0", src="n1", snk=GND_NODE, gate="a0",
                   w=wn, l=tech.lmin)
    stage.add_nmos("MN1", src="n1", snk=GND_NODE, gate="a1",
                   w=wn, l=tech.lmin)
    # PMOS: a0-a1 stack parallel to a2.
    stage.add_pmos("MP0", src=VDD_NODE, snk="p1", gate="a0",
                   w=wp, l=tech.lmin)
    stage.add_pmos("MP1", src="p1", snk="out", gate="a1",
                   w=wp, l=tech.lmin)
    stage.add_pmos("MP2", src=VDD_NODE, snk="out", gate="a2",
                   w=wp, l=tech.lmin)
    stage.mark_output("out")
    stage.set_load("out", load)
    return stage


def decoder_netlist(tech: Technology, bits: int = 2,
                    load: float = DEFAULT_LOAD) -> FlatNetlist:
    """A static ``bits``-to-``2**bits`` address decoder, as a flat netlist.

    The standard NAND/inverter decoder: one inverter per address bit
    produces the complement, each of the ``2**bits`` word lines is a
    ``bits``-input NAND followed by an output inverter.  Every NAND and
    every output inverter is geometrically identical, so the stage graph
    is dominated by repeated gate configurations — the workload the
    stage-result cache of :mod:`repro.analysis.parallel` is built for —
    and the word lines are mutually independent, giving the scheduler
    ``2**bits`` parallel cones.

    Inputs ``a0..a{bits-1}``; outputs ``w0..w{2**bits-1}`` (word line
    ``wj`` selects address ``j``, LSB = ``a0``).
    """
    if bits < 1:
        raise ValueError("decoder_netlist needs at least 1 address bit")
    wn, wp = _min_widths(tech)
    net = FlatNetlist(f"decoder{bits}", vdd=tech.vdd)
    for b in range(bits):
        net.mark_input(f"a{b}")
        net.add_pmos(f"MPI{b}", gate=f"a{b}", src=VDD_NODE,
                     snk=f"a{b}b", w=wp, l=tech.lmin)
        net.add_nmos(f"MNI{b}", gate=f"a{b}", src=f"a{b}b",
                     snk=GND_NODE, w=wn, l=tech.lmin)
    for j in range(2 ** bits):
        word = f"w{j}"
        nand = f"n{j}"
        # bits-input NAND over the true/complement address lines.
        upper = nand
        for b in range(bits - 1, 0, -1):
            gate = f"a{b}" if (j >> b) & 1 else f"a{b}b"
            net.add_nmos(f"MN{j}_{b}", gate=gate, src=upper,
                         snk=f"n{j}_{b}", w=wn, l=tech.lmin)
            upper = f"n{j}_{b}"
        gate0 = "a0" if j & 1 else "a0b"
        net.add_nmos(f"MN{j}_0", gate=gate0, src=upper, snk=GND_NODE,
                     w=wn, l=tech.lmin)
        for b in range(bits):
            gate = f"a{b}" if (j >> b) & 1 else f"a{b}b"
            net.add_pmos(f"MP{j}_{b}", gate=gate, src=VDD_NODE,
                         snk=nand, w=wp, l=tech.lmin)
        # Word-line output inverter.
        net.add_pmos(f"MPW{j}", gate=nand, src=VDD_NODE, snk=word,
                     w=wp, l=tech.lmin)
        net.add_nmos(f"MNW{j}", gate=nand, src=word, snk=GND_NODE,
                     w=wn, l=tech.lmin)
        net.mark_output(word)
        net.set_load(word, load)
    return net


def pass_transistor_netlist(tech: Technology,
                            load: float = DEFAULT_LOAD) -> FlatNetlist:
    """Fig. 1 (Example 1): NAND2 + pass transistor + wire, as a flat netlist.

    The NAND output ``x`` feeds the diffusion of pass transistor ``M1``
    through wire ``W1``; extraction must place the NAND, the wire and the
    pass device in one logic stage (the cell boundary does not coincide
    with the stage boundary).
    """
    wn, wp = _min_widths(tech)
    net = FlatNetlist("fig1", vdd=tech.vdd)
    net.add_pmos("MPA", gate="a", src=VDD_NODE, snk="x", w=wp, l=tech.lmin)
    net.add_pmos("MPB", gate="b", src=VDD_NODE, snk="x", w=wp, l=tech.lmin)
    net.add_nmos("MNA", gate="a", src="x", snk="m", w=wn, l=tech.lmin)
    net.add_nmos("MNB", gate="b", src="m", snk=GND_NODE, w=wn, l=tech.lmin)
    net.add_wire("W1", a="x", b="y", w=tech.wmin, l=30e-6)
    net.add_nmos("M1", gate="sel", src="y", snk="z", w=wn, l=tech.lmin)
    # Next stage: an inverter loading node z through its gate.
    net.add_pmos("MP2", gate="z", src=VDD_NODE, snk="out", w=wp, l=tech.lmin)
    net.add_nmos("MN2", gate="z", src="out", snk=GND_NODE, w=wn, l=tech.lmin)
    for sig in ("a", "b", "sel"):
        net.mark_input(sig)
    net.mark_output("out")
    net.set_load("out", load)
    return net
