"""Escalation ladder: degrade stage-arc solves instead of dying.

QWM is an approximation stacked on Newton iterations over tabular
device data, and convergence is not guaranteed for arbitrary stacks
(PAPER.md §3–4).  Production timers degrade rather than die: when the
fast solve for one stage arc fails, something slower and sounder must
produce *an* answer so the full-chip analysis still completes.  The
ladder has four rungs, each strictly more robust (and slower or more
conservative) than the last:

``qwm``
    The normal piecewise-quadratic waveform-matching solve.
``qwm-retry``
    QWM again with perturbed options — finer cascade subdivision,
    relaxed Newton tolerance, more iterations — the standard "shrink
    the step, loosen the tolerance" recovery move.
``spice``
    The adaptive LTE-controlled transient engine for just this stage.
    Slower by orders of magnitude but it does not depend on the QWM
    region schedule, and its analytic device models are immune to
    corrupted characterization tables.
``bounded``
    A conservative switch-level/Elmore bound (``ln 2 · T_elmore``).
    No Newton iterations at all — it cannot fail to converge — so it
    is the rung of last resort and its answer is a bound, not an
    estimate.

Every arrival an escalated arc feeds is tagged with the rung that
produced it (:class:`repro.analysis.sta.ArrivalTime.quality`), and
quality degrades transitively: an arrival computed from a ``bounded``
predecessor is itself at best ``bounded`` (see :func:`merge_quality`).

A rung that *completes* and reports "no transition" (returns None) is
trusted: the arc is unsensitizable, and the ladder stops without
inventing a delay.  Only genuine solver failures — listed in
``_RUNG_FAILURES`` — escalate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.engine import WaveformEvaluator
from repro.core.qwm import QWMOptions
from repro.linalg.newton import NewtonConvergenceError
from repro.obs import inc
from repro.obs.flight import flight
from repro.obs.profile import profile_add, profile_phase
from repro.resilience import faults
from repro.resilience.faults import StageTimeoutError
from repro.spice.adaptive import (
    AdaptiveOptions,
    AdaptiveTransientSimulator,
    TransientBudgetExceeded,
)
from repro.spice.results import SimulationStats
from repro.spice.sources import ConstantSource, RampSource, StepSource

__all__ = [
    "QUALITY_QWM", "QUALITY_RETRY", "QUALITY_SPICE", "QUALITY_BOUNDED",
    "QUALITY_ORDER", "QUALITY_RANK", "merge_quality",
    "ArcSolveError", "EscalationPolicy", "EscalationLadder",
    "adaptive_spice_arc", "perturbed_options",
]

QUALITY_QWM = "qwm"
QUALITY_RETRY = "qwm-retry"
QUALITY_SPICE = "spice"
QUALITY_BOUNDED = "bounded"

#: Rung qualities from most to least trustworthy arithmetic.
QUALITY_ORDER = (QUALITY_QWM, QUALITY_RETRY, QUALITY_SPICE,
                 QUALITY_BOUNDED)
QUALITY_RANK: Dict[str, int] = {q: i for i, q in enumerate(QUALITY_ORDER)}


def merge_quality(*qualities: Optional[str]) -> Optional[str]:
    """Worst-of quality merge (None entries are skipped).

    An arrival is only as trustworthy as the least trustworthy solve on
    its causal chain, so propagation takes the max rank of the arc's
    own quality and the cause arrival's quality.
    """
    worst: Optional[str] = None
    for quality in qualities:
        if quality is None:
            continue
        if worst is None or QUALITY_RANK.get(quality, 0) > \
                QUALITY_RANK.get(worst, 0):
            worst = quality
    return worst


class ArcSolveError(RuntimeError):
    """A QWM stage-arc solve failed to produce a usable transition.

    Raised when the region schedule aborted early enough that the
    accepted waveform never crosses mid-rail (``delay() is None`` on a
    genuine transition) — the QWM failure mode that historically
    surfaced as a silent ``None`` arc.
    """


#: Exceptions a rung may raise that mean "this solver failed here" —
#: the ladder absorbs these and tries the next rung.  Anything else
#: (TypeError, a lint PreflightError, ...) is a programming or usage
#: error and propagates.
_RUNG_FAILURES = (
    ArcSolveError,
    NewtonConvergenceError,
    StageTimeoutError,
    TransientBudgetExceeded,
    FloatingPointError,
    np.linalg.LinAlgError,
)


@dataclass(frozen=True)
class EscalationPolicy:
    """Configuration of the escalation ladder.

    Attributes:
        enabled: master switch.  ``EscalationPolicy(enabled=False)``
            restores the legacy fail-fast behavior (a non-converging
            arc raises out of :meth:`StaticTimingAnalyzer.analyze`).
        qwm_retries: number of perturbed-option QWM retry rungs.
        spice: whether the adaptive-transient rung is available.
        bound: whether the switch-level bound rung is available.
        stage_timeout: optional wall-clock budget per arc [s]; once
            exceeded, remaining solver rungs are skipped and the arc
            falls through to the (non-iterative) bound.
        spice_settle: input-edge offset for the SPICE rung [s] — the
            DC operating point is computed at t=0, so the edge must
            arrive strictly later for a transition to exist.
        spice_max_steps: accepted-step budget for the SPICE rung.
        spice_max_seconds: wall-clock budget for the SPICE rung [s].
    """

    enabled: bool = True
    qwm_retries: int = 1
    spice: bool = True
    bound: bool = True
    stage_timeout: Optional[float] = None
    spice_settle: float = 5e-12
    spice_max_steps: int = 50_000
    spice_max_seconds: Optional[float] = 10.0

    def __post_init__(self) -> None:
        if self.qwm_retries < 0:
            raise ValueError("qwm_retries must be non-negative")
        if self.stage_timeout is not None and self.stage_timeout <= 0:
            raise ValueError("stage_timeout must be positive or None")
        if self.spice_settle <= 0:
            raise ValueError("spice_settle must be positive")
        if self.spice_max_steps < 1:
            raise ValueError("spice_max_steps must be >= 1")


def perturbed_options(base: QWMOptions, attempt: int) -> QWMOptions:
    """QWM options for retry rung ``attempt`` (1-based).

    Finer cascade subdivision attacks region-schedule failures
    (smaller substeps keep the quadratic ansatz inside its validity
    window); relaxed Newton absolute tolerance with a doubled
    iteration budget attacks marginal non-convergence; extra region
    retries give the milestone search more room.
    """
    newton = replace(base.newton,
                     abstol=base.newton.abstol * (100.0 ** attempt),
                     max_iterations=base.newton.max_iterations * 2)
    return replace(base,
                   cascade_substeps=base.cascade_substeps + 2 * attempt,
                   max_retries=base.max_retries + 2,
                   newton=newton)


def adaptive_spice_arc(analyzer: Any, stage, output: str,
                       out_direction: str, switching_input: str,
                       input_slew: Optional[float] = None,
                       stats: Optional[SimulationStats] = None,
                       settle: float = 5e-12,
                       max_steps: int = 50_000,
                       max_seconds: float = 10.0
                       ) -> Optional[Tuple[float, Optional[float]]]:
    """Adaptive-transient evaluation of one stage arc.

    Mirrors the QWM sensitization loop, but on the full stage
    equations: the input edge is delayed by ``settle`` so the t=0 DC
    solve settles to the *pre*-transition state, and the delay is
    measured from the edge's 50% crossing like the QWM path does.
    Returns (delay, output slew) or None when no sensitization
    produces a crossing.

    This is both the ladder's ``spice`` rung and the reference solver
    of the shadow-SPICE auditor (:mod:`repro.analysis.audit`) — one
    measurement convention, so audit errors are comparable to the
    golden suite's.  ``analyzer`` is duck-typed like the ladder's: any
    object with ``tech``, ``evaluator`` and the sensitization helpers.
    """
    vdd = stage.vdd
    rising_in = out_direction == "fall"
    v0, v1 = (0.0, vdd) if rising_in else (vdd, 0.0)
    t_edge = settle
    if input_slew:
        source = RampSource(v0, v1, t_edge, input_slew)
        t_input = t_edge + 0.5 * input_slew
    else:
        source = StepSource(v0, v1, t_edge)
        t_input = t_edge
    base_options = analyzer.evaluator.options
    options = AdaptiveOptions(
        t_stop=t_edge + base_options.t_stop,
        max_steps=max_steps,
        max_wall_seconds=max_seconds)
    simulator = AdaptiveTransientSimulator(stage, analyzer.tech,
                                           options)
    for levels in analyzer._sensitizations(
            stage, switching_input, out_direction):
        inputs: Dict[str, Any] = {switching_input: source}
        inputs.update({name: ConstantSource(level)
                       for name, level in levels.items()})
        result = simulator.run(inputs)
        if stats is not None:
            stats.accumulate(result.stats)
        trace = result.voltages[output]
        v_start = float(trace[0])
        if out_direction == "fall" and v_start < 0.55 * vdd:
            continue
        if out_direction == "rise" and v_start > 0.45 * vdd:
            continue
        delay = result.delay_50(output, vdd, t_input=t_input,
                                direction=out_direction)
        if delay is None:
            continue
        slew_1090 = result.slew(output, vdd, out_direction)
        # 10–90% measurement scaled to the full-swing-equivalent
        # ramp time the QWM tangent-ramp slews report.
        out_slew = slew_1090 / 0.8 if slew_1090 is not None else None
        return delay, out_slew
    return None


#: Callback the STA layer hands the ladder: run the normal QWM
#: sensitization loop with the given evaluator, return (delay, slew)
#: or None (unsensitizable), raise ArcSolveError / solver errors on
#: failure.
QwmAttempt = Callable[[WaveformEvaluator],
                      Optional[Tuple[float, Optional[float]]]]


class EscalationLadder:
    """Runs one stage arc down the rungs until something answers.

    Args:
        analyzer: the owning :class:`~repro.analysis.sta.
            StaticTimingAnalyzer` (duck-typed: the ladder uses its
            ``tech``, ``evaluator`` and sensitization helpers only, so
            there is no import cycle back into the analysis package).
        policy: the escalation policy.
    """

    def __init__(self, analyzer: Any, policy: EscalationPolicy):
        self.analyzer = analyzer
        self.policy = policy
        self._retry_evaluators: Dict[int, WaveformEvaluator] = {}
        self._switch_timer = None

    # -- rung builders -------------------------------------------------
    def _retry_evaluator(self, attempt: int) -> WaveformEvaluator:
        evaluator = self._retry_evaluators.get(attempt)
        if evaluator is None:
            base = self.analyzer.evaluator
            evaluator = WaveformEvaluator(
                self.analyzer.tech, library=base.library,
                options=perturbed_options(base.options, attempt))
            self._retry_evaluators[attempt] = evaluator
        return evaluator

    def _rungs(self, qwm_attempt: QwmAttempt, stage, output: str,
               out_direction: str, switching_input: str,
               input_slew: Optional[float],
               stats: Optional[SimulationStats]
               ) -> List[Tuple[str, Callable[[], Optional[
                   Tuple[float, Optional[float]]]]]]:
        rungs: List[Tuple[str, Callable[
            [], Optional[Tuple[float, Optional[float]]]]]] = []
        rungs.append((QUALITY_QWM,
                      lambda: qwm_attempt(self.analyzer.evaluator)))
        for attempt in range(1, self.policy.qwm_retries + 1):
            evaluator = self._retry_evaluator(attempt)
            rungs.append((QUALITY_RETRY,
                          lambda ev=evaluator: qwm_attempt(ev)))
        if self.policy.spice:
            rungs.append((QUALITY_SPICE,
                          lambda: self._spice_arc(
                              stage, output, out_direction,
                              switching_input, input_slew, stats)))
        if self.policy.bound:
            rungs.append((QUALITY_BOUNDED,
                          lambda: self.bound_arc(
                              stage, output, out_direction,
                              switching_input)))
        return rungs

    # -- bookkeeping ---------------------------------------------------
    @staticmethod
    def _failure_reason(exc: BaseException) -> str:
        if isinstance(exc, NewtonConvergenceError):
            return getattr(exc, "reason", "newton")
        if isinstance(exc, StageTimeoutError):
            return "stage_timeout"
        if isinstance(exc, TransientBudgetExceeded):
            return "budget_exceeded"
        if isinstance(exc, ArcSolveError):
            return "qwm_no_waveform"
        return type(exc).__name__

    def _note(self, from_rung: str, to_rung: Optional[str], reason: str,
              stage, output: str, out_direction: str,
              switching_input: str) -> None:
        inc("resilience.escalations", rung=from_rung)
        profile_add("escalations", 1, root="resilience")
        fl = flight()
        if fl.enabled:
            fl.record("escalation", from_rung=from_rung,
                      to_rung=to_rung or "none", reason=reason,
                      stage=stage.name, output=output,
                      direction=out_direction, input=switching_input)

    # -- the ladder ----------------------------------------------------
    def evaluate_arc(self, stage, output: str, out_direction: str,
                     switching_input: str,
                     input_slew: Optional[float],
                     stats: Optional[SimulationStats],
                     qwm_attempt: QwmAttempt
                     ) -> Optional[Tuple[float, Optional[float], str]]:
        """Run the rungs in order; returns (delay, slew, quality) or None.

        None means a rung completed soundly and found no transition
        (the arc is unsensitizable) — that verdict is final, it does
        not escalate.  If every rung fails, the last failure is
        re-raised: with the default policy that cannot happen (the
        bound rung has no failure modes beyond "no conducting path",
        which is the None verdict), but a policy with ``bound=False``
        can exhaust the ladder.
        """
        rungs = self._rungs(qwm_attempt, stage, output, out_direction,
                            switching_input, input_slew, stats)
        deadline = (time.perf_counter() + self.policy.stage_timeout
                    if self.policy.stage_timeout is not None else None)
        last_error: Optional[BaseException] = None
        expired = False
        for index, (rung, attempt) in enumerate(rungs):
            next_rung = rungs[index + 1][0] if index + 1 < len(rungs) \
                else None
            if rung != QUALITY_BOUNDED:
                if expired:
                    continue
                if deadline is not None and \
                        time.perf_counter() > deadline:
                    expired = True
                    self._note(rung, QUALITY_BOUNDED, "stage_timeout",
                               stage, output, out_direction,
                               switching_input)
                    continue
            try:
                with profile_phase("resilience.rung", tag=rung), \
                        faults.scope(rung=rung):
                    arc = attempt()
            except _RUNG_FAILURES as exc:
                last_error = exc
                if isinstance(exc, StageTimeoutError):
                    # Injected or real: stop burning wall-clock on
                    # iterative rungs, go straight to the bound.
                    expired = True
                self._note(rung, next_rung, self._failure_reason(exc),
                           stage, output, out_direction,
                           switching_input)
                continue
            if arc is None:
                return None
            return arc[0], arc[1], rung
        if last_error is not None:
            raise last_error
        if expired:
            raise StageTimeoutError(
                f"arc exceeded stage budget "
                f"{self.policy.stage_timeout!r}s with no bound rung",
                stage=stage.name, budget=self.policy.stage_timeout)
        return None

    # -- spice rung ----------------------------------------------------
    def _spice_arc(self, stage, output: str, out_direction: str,
                   switching_input: str, input_slew: Optional[float],
                   stats: Optional[SimulationStats]
                   ) -> Optional[Tuple[float, Optional[float]]]:
        """Adaptive-transient evaluation of one arc (policy-budgeted)."""
        return adaptive_spice_arc(
            self.analyzer, stage, output, out_direction,
            switching_input, input_slew=input_slew, stats=stats,
            settle=self.policy.spice_settle,
            max_steps=self.policy.spice_max_steps,
            max_seconds=self.policy.spice_max_seconds)

    # -- bound rung ----------------------------------------------------
    def bound_arc(self, stage, output: str, out_direction: str,
                  switching_input: str
                  ) -> Optional[Tuple[float, Optional[float]]]:
        """Conservative switch-level/Elmore bound for one arc.

        Purely structural — an RC ladder over the conducting pull path
        with analytic effective resistances — so it has no Newton
        iterations to diverge and no table data to be corrupted.  A
        missing conducting path is the None (unsensitizable) verdict.
        Public because the admission controller's ``bound`` clamp
        routes arcs straight here, bypassing the iterative rungs.
        """
        from repro.baselines.switch_level import SwitchLevelTimer

        if self._switch_timer is None:
            self._switch_timer = SwitchLevelTimer(
                self.analyzer.tech,
                library=self.analyzer.evaluator.library)
        final_level = stage.vdd if out_direction == "fall" else 0.0
        inputs: Dict[str, float] = {switching_input: final_level}
        for name in stage.inputs:
            if name == switching_input:
                continue
            inputs[name] = self.analyzer._sensitizing_level(
                stage, name, out_direction)
        try:
            estimate = self._switch_timer.estimate(
                stage, output, out_direction, inputs)
        except (ValueError, KeyError):
            return None
        return estimate.delay, None
