"""Run-level wall-clock budgets and per-wave admission control.

The escalation ladder (:mod:`repro.resilience.ladder`) guarantees every
*arc* completes; this module guarantees the *run* does.  A
:class:`RunBudget` carries the user-facing ``--deadline`` (plus a grace
allowance for the wave in flight when the deadline strikes), and an
:class:`AdmissionController` consults it before each wave is
dispatched: it projects the remaining cost from completed-arc timings
and, as the deadline approaches, clamps the escalation ladder — first
disabling the SPICE rung (``no-spice``), then routing straight to the
conservative switch-level bound (``bound``).  The clamp level is a
monotonic ratchet: once the run has degraded it never un-degrades, so
arrival quality tags stay honest and reproducible within one run.

Clamp levels, in degradation order:

``full``
    No clamp; the full ladder (QWM -> retry -> SPICE -> bound) runs.
``no-spice``
    The SPICE rung is disabled; arcs that would have escalated to the
    reference transient fall through to the conservative bound.
``bound``
    Arcs route straight to the switch-level bound
    (:data:`~repro.resilience.ladder.QUALITY_BOUNDED` quality) without
    attempting QWM — the cheapest honest answer.

All decisions are surfaced through ``resilience.budget.*`` metrics so a
deadline-constrained run leaves an auditable trail in the telemetry
dump.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.obs import inc, set_gauge
from repro.resilience import faults

__all__ = [
    "CLAMP_FULL",
    "CLAMP_NO_SPICE",
    "CLAMP_BOUND",
    "CLAMP_ORDER",
    "CLAMP_RANK",
    "RunBudget",
    "AdmissionController",
]

#: Clamp levels in degradation order (least to most degraded).
CLAMP_FULL = "full"
CLAMP_NO_SPICE = "no-spice"
CLAMP_BOUND = "bound"
CLAMP_ORDER = (CLAMP_FULL, CLAMP_NO_SPICE, CLAMP_BOUND)
CLAMP_RANK = {level: rank for rank, level in enumerate(CLAMP_ORDER)}

#: Grace defaults: a wave already in flight when the deadline strikes
#: is allowed to finish inside ``max(MIN_GRACE, GRACE_FRACTION *
#: deadline)`` unless the budget names an explicit grace.
MIN_GRACE_SECONDS = 0.5
GRACE_FRACTION = 0.1

#: Projected-cost pressure at which the controller skips ``no-spice``
#: and routes straight to the bound: when finishing the remaining
#: stages at mean cost would overshoot the remaining budget by this
#: factor, dropping only the SPICE rung cannot save the run.
BOUND_PRESSURE = 4.0


@dataclass(frozen=True)
class RunBudget:
    """Run-level wall-clock budget.

    Args:
        deadline: total wall-clock seconds the analysis may spend.
        grace: seconds the wave in flight at deadline may overrun;
            defaults to ``max(0.5, 0.1 * deadline)``.
    """

    deadline: float
    grace: Optional[float] = None

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError(
                f"deadline must be positive, got {self.deadline}")
        if self.grace is not None and self.grace <= 0:
            raise ValueError(
                f"grace must be positive, got {self.grace}")

    @property
    def grace_seconds(self) -> float:
        if self.grace is not None:
            return float(self.grace)
        return max(MIN_GRACE_SECONDS, GRACE_FRACTION * self.deadline)


class AdmissionController:
    """Per-wave ladder clamping against a :class:`RunBudget`.

    The controller is fed completed-stage wall times via
    :meth:`note_stage_cost` and consulted via :meth:`admit` before each
    wave dispatch.  The clock is injectable so tests can drive the
    deadline deterministically.
    """

    def __init__(self, budget: RunBudget, parallelism: int = 1,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if parallelism < 1:
            raise ValueError(
                f"parallelism must be >= 1, got {parallelism}")
        self.budget = budget
        self.parallelism = parallelism
        self._now = clock
        self._started = clock()
        self._costs: List[float] = []
        self._level = CLAMP_FULL
        self._clamped: Dict[str, int] = {}
        self._exhausted = False

    def note_stage_cost(self, seconds: float) -> None:
        """Record one completed stage's wall time for cost projection."""
        if seconds >= 0:
            self._costs.append(float(seconds))

    def elapsed(self) -> float:
        return self._now() - self._started

    def remaining(self) -> float:
        if self._exhausted:
            return 0.0
        return self.budget.deadline - self.elapsed()

    @property
    def level(self) -> str:
        return self._level

    def admit(self, wave: int, stages_remaining: int) -> str:
        """Clamp level for the next wave dispatch.

        Projects the cost of the remaining stages from the mean
        completed-stage cost divided by the pool parallelism, and
        ratchets the clamp level when the projection does not fit the
        remaining budget.  Returns one of :data:`CLAMP_ORDER`.
        """
        if faults.deadline_exhaust_gate():
            self._exhausted = True
        remaining = self.remaining()
        mean_cost = (sum(self._costs) / len(self._costs)
                     if self._costs else 0.0)
        projected = (stages_remaining * mean_cost
                     / max(1, self.parallelism))
        level = CLAMP_FULL
        if remaining <= 0.0:
            level = CLAMP_BOUND
        elif projected > BOUND_PRESSURE * remaining:
            level = CLAMP_BOUND
        elif projected > remaining:
            level = CLAMP_NO_SPICE
        if CLAMP_RANK[level] > CLAMP_RANK[self._level]:
            inc("resilience.budget.clamp_escalations", level=level)
            self._level = level
        set_gauge("resilience.budget.remaining_seconds",
                  max(0.0, remaining))
        if self._level != CLAMP_FULL:
            inc("resilience.budget.clamped_stages", level=self._level)
            self._clamped[self._level] = (
                self._clamped.get(self._level, 0) + 1)
        return self._level

    def summary(self) -> Dict[str, object]:
        """Budget outcome for :class:`~repro.analysis.sta.StaResult`."""
        elapsed = self.elapsed()
        return {
            "deadline": self.budget.deadline,
            "grace": self.budget.grace_seconds,
            "elapsed": elapsed,
            "within_deadline": (
                elapsed <= self.budget.deadline
                + self.budget.grace_seconds),
            "final_level": self._level,
            "clamped_stages": dict(self._clamped),
        }
