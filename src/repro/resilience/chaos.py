"""Chaos harness: prove each fault class degrades to the right rung.

The escalation ladder (:mod:`repro.resilience.ladder`) claims that any
solver failure is absorbed by a deeper rung and the analysis still
completes.  This module makes that claim testable: it runs a fixed
scenario matrix — one scenario per fault class from
:data:`repro.resilience.faults.FAULT_KINDS` plus a fault-free baseline —
against a real multi-stage design (the 2-bit decoder), injects each
fault deterministically via a seeded :class:`~repro.resilience.faults.
FaultPlan`, and reports which rung absorbed it.

A scenario passes when

* the analysis completes (no exception escapes ``analyze``),
* the absorbing rung matches the scenario's expectation (read from the
  arrival quality tags, the parallel re-dispatch counter, or the cache
  quarantine counter, depending on the fault class), and
* every arrival *outside* the injected fault's fanout cone is
  bit-identical to the fault-free baseline — degradation must be
  contained, not smeared over the design.

Everything is deterministic under a fixed seed: fault targeting is
counting-based, table poisoning draws from ``default_rng(seed)``, and
the target stage is resolved structurally (the first leaf stage in
name order) rather than by timing.

Used by ``repro chaos`` (CLI) and ``tests/test_resilience.py``.
"""

from __future__ import annotations

import pickle
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.obs import ObsConfig, configure, disable, telemetry
from repro.resilience import faults
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.ladder import (
    QUALITY_QWM,
    QUALITY_RANK,
    EscalationPolicy,
)

__all__ = [
    "ChaosScenario", "ScenarioOutcome", "ChaosReport",
    "default_scenarios", "run_matrix", "format_report",
]

#: Absorbing mechanisms that are not ladder rungs.
ABSORB_REDISPATCH = "serial-redispatch"
ABSORB_QUARANTINE = "store-quarantine"
ABSORB_RESUME = "journal-resume"
ABSORB_JOURNAL_DISABLED = "journal-disabled"


@dataclass(frozen=True)
class ChaosScenario:
    """One row of the chaos matrix.

    Attributes:
        name: scenario identifier (CLI ``--scenario`` selects by it).
        description: one-line human summary.
        specs: the faults the scenario injects (empty = baseline).
        expect: acceptable absorbing mechanisms — ladder rung names,
            :data:`ABSORB_REDISPATCH`, or :data:`ABSORB_QUARANTINE`.
        backend / workers / stage_timeout: execution configuration
            (``"serial"`` scenarios run the plain in-process engine).
        corrupt_library: poison a *private copy* of the table library
            with the plan's ``nan_table`` specs before the run.
        corrupt_store: round-trip the run through an on-disk stage
            cache that the plan's ``cache_truncate`` specs mangle
            between write and reload.
        scoped_to_stage: the fault only touches the target stage, so
            arrivals outside its fanout cone must match the baseline
            bit for bit.
        runner: name of a special run recipe (``"kill_resume"``,
            ``"enospc"``, ``"truncate_resume"``, ``"deadline"``) for
            scenarios that need more than a single ``analyze`` call —
            e.g. kill the run, then resume it from the journal.
        deadline: run budget [s] handed to the admission controller by
            the ``"deadline"`` runner.
    """

    name: str
    description: str
    specs: Tuple[FaultSpec, ...] = ()
    expect: Tuple[str, ...] = (QUALITY_QWM,)
    backend: str = "serial"
    workers: int = 1
    stage_timeout: Optional[float] = None
    corrupt_library: bool = False
    corrupt_store: bool = False
    scoped_to_stage: bool = True
    runner: Optional[str] = None
    deadline: Optional[float] = None


@dataclass
class ScenarioOutcome:
    """What actually happened when one scenario ran."""

    name: str
    expect: Tuple[str, ...]
    absorbed_by: Optional[str] = None
    completed: bool = False
    degraded_events: int = 0
    faults_injected: int = 0
    escalations: int = 0
    redispatches: int = 0
    quarantines: int = 0
    unaffected_identical: Optional[bool] = None
    wall_seconds: float = 0.0
    error: Optional[str] = None

    @property
    def absorbed(self) -> bool:
        """Scenario verdict: completed, right rung, contained."""
        return (self.completed
                and self.absorbed_by in self.expect
                and self.unaffected_identical is not False)

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "expect": list(self.expect),
            "absorbed_by": self.absorbed_by,
            "absorbed": self.absorbed,
            "completed": self.completed,
            "degraded_events": self.degraded_events,
            "faults_injected": self.faults_injected,
            "escalations": self.escalations,
            "redispatches": self.redispatches,
            "quarantines": self.quarantines,
            "unaffected_identical": self.unaffected_identical,
            "wall_seconds": self.wall_seconds,
            "error": self.error,
        }


@dataclass
class ChaosReport:
    """The full matrix result."""

    seed: int
    bits: int
    target_stage: str
    outcomes: List[ScenarioOutcome] = field(default_factory=list)

    @property
    def absorbed_all(self) -> bool:
        return all(o.absorbed for o in self.outcomes)

    def outcome(self, name: str) -> Optional[ScenarioOutcome]:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        return None

    def to_json(self) -> Dict[str, Any]:
        return {"seed": self.seed, "bits": self.bits,
                "target_stage": self.target_stage,
                "absorbed_all": self.absorbed_all,
                "outcomes": [o.to_json() for o in self.outcomes]}


def default_scenarios(target: str) -> List[ChaosScenario]:
    """The standard matrix: every fault class plus a clean baseline.

    Args:
        target: stage name the stage-scoped faults aim at (resolved by
            :func:`run_matrix` as the first leaf stage in name order).
    """
    newton = "newton_nonconverge"
    return [
        ChaosScenario(
            "baseline",
            "no fault injected; every arrival stays at the qwm rung",
            expect=(QUALITY_QWM,)),
        ChaosScenario(
            "nan-table",
            "NaN-poisoned NMOS characterization cells; the analytic-"
            "model SPICE rung is immune",
            specs=(FaultSpec("nan_table", fraction=0.25, polarity="n"),),
            expect=("spice", "bounded"),
            corrupt_library=True, scoped_to_stage=False),
        ChaosScenario(
            "newton-transient",
            "Newton dies on the plain qwm rung only; the perturbed "
            "retry absorbs it",
            specs=(FaultSpec(newton, stage=target, rungs=("qwm",)),),
            expect=("qwm-retry",)),
        ChaosScenario(
            "newton-persistent",
            "Newton dies on both QWM rungs; the SPICE rung absorbs it",
            specs=(FaultSpec(newton, stage=target,
                             rungs=("qwm", "qwm-retry")),),
            expect=("spice",)),
        ChaosScenario(
            "newton-exhaustive",
            "Newton dies on every iterative rung; only the iteration-"
            "free switch-level bound answers",
            specs=(FaultSpec(newton, stage=target,
                             rungs=("qwm", "qwm-retry", "spice")),),
            expect=("bounded",)),
        ChaosScenario(
            "stage-timeout",
            "the stage's wall-clock budget expires immediately; the "
            "ladder skips straight to the bound",
            specs=(FaultSpec("stage_timeout", stage=target,
                             timeout_seconds=0.0),),
            expect=("bounded",)),
        ChaosScenario(
            "worker-crash",
            "a process-pool worker hard-exits mid-stage; the parent "
            "re-dispatches the stage serially",
            specs=(FaultSpec("worker_crash", stage=target, count=1),),
            expect=(ABSORB_REDISPATCH,),
            backend="process", workers=2),
        ChaosScenario(
            "worker-hang",
            "a worker sleeps past the stage watchdog; the parent "
            "abandons it and re-dispatches serially",
            specs=(FaultSpec("worker_hang", stage=target,
                             hang_seconds=2.5, count=1),),
            expect=(ABSORB_REDISPATCH,),
            backend="process", workers=2, stage_timeout=0.6),
        ChaosScenario(
            "cache-truncate",
            "the on-disk stage-result store is truncated between runs; "
            "the loader quarantines it and re-solves",
            specs=(FaultSpec("cache_truncate", fraction=0.5),),
            expect=(ABSORB_QUARANTINE,),
            corrupt_store=True),
        ChaosScenario(
            "journal-kill-resume",
            "the run is hard-killed right after a wave checkpoint; "
            "--resume replays the journal and finishes bit-identically",
            specs=(FaultSpec("run_kill", wave=0, count=1),),
            expect=(ABSORB_RESUME,),
            runner="kill_resume"),
        ChaosScenario(
            "journal-kill-resume-process",
            "the same between-wave kill, but under the process pool",
            specs=(FaultSpec("run_kill", wave=0, count=1),),
            expect=(ABSORB_RESUME,),
            backend="process", workers=2,
            runner="kill_resume"),
        ChaosScenario(
            "journal-enospc",
            "the journal flush hits ENOSPC; journaling self-disables "
            "and the analysis still completes cleanly",
            specs=(FaultSpec("journal_enospc", count=1),),
            expect=(ABSORB_JOURNAL_DISABLED,),
            runner="enospc"),
        ChaosScenario(
            "journal-truncate",
            "the journal tail is truncated between runs; --resume "
            "drops the damaged lines and replays what survived",
            specs=(FaultSpec("journal_truncate", fraction=0.6),),
            expect=(ABSORB_RESUME,),
            runner="truncate_resume"),
        ChaosScenario(
            "deadline-exhaust",
            "the run budget is forced to exhaustion mid-run; the "
            "admission controller clamps the ladder to the bound and "
            "the run still finishes",
            specs=(FaultSpec("deadline_exhaust", nth=2),),
            expect=("bounded",),
            scoped_to_stage=False,
            runner="deadline", deadline=60.0),
    ]


# ----------------------------------------------------------------------
# Matrix execution.
# ----------------------------------------------------------------------
def _leaf_stage(graph) -> str:
    """First stage (name order) whose outputs feed no other stage."""
    consumed: Set[str] = set()
    for stage in graph.stages:
        consumed.update(stage.inputs)
    for stage in sorted(graph.stages, key=lambda s: s.name):
        if not any(out.name in consumed for out in stage.outputs):
            return stage.name
    return sorted(s.name for s in graph.stages)[0]


def _fanout_nets(graph, stage_name: str) -> Set[str]:
    """Transitive fanout cone of one stage's outputs (net names)."""
    consumers: Dict[str, List] = {}
    for stage in graph.stages:
        for name in stage.inputs:
            consumers.setdefault(name, []).append(stage)
    affected: Set[str] = set()
    frontier = [s for s in graph.stages if s.name == stage_name]
    while frontier:
        stage = frontier.pop()
        for out in stage.outputs:
            if out.name in affected:
                continue
            affected.add(out.name)
            frontier.extend(consumers.get(out.name, ()))
    return affected


def _worst_quality(result) -> str:
    worst = QUALITY_QWM
    for arrival in result.arrivals.values():
        quality = arrival.quality
        if quality is not None and QUALITY_RANK.get(quality, 0) > \
                QUALITY_RANK.get(worst, 0):
            worst = quality
    return worst


def _unaffected_match(result, baseline, affected_nets: Set[str]) -> bool:
    """Bit-identical arrivals everywhere outside the fault's cone."""
    for event, reference in baseline.arrivals.items():
        if event[0] in affected_nets:
            continue
        arrival = result.arrivals.get(event)
        if arrival is None or arrival.time != reference.time:
            return False
    return True


class _Counters:
    """Before/after deltas of the resilience counters."""

    NAMES = ("resilience.faults.injected", "resilience.escalations",
             "sta.parallel.redispatch", "cache.store_corrupt")

    def __init__(self) -> None:
        metrics = telemetry().metrics
        self._before = {name: metrics.counter(name).total()
                        for name in self.NAMES}

    def delta(self, name: str) -> int:
        metrics = telemetry().metrics
        return int(metrics.counter(name).total() - self._before[name])


def _run_scenario(scenario: ChaosScenario, seed: int, tech, library,
                  graph, baseline, affected_nets: Set[str]
                  ) -> ScenarioOutcome:
    from repro.analysis import StaticTimingAnalyzer
    from repro.analysis.parallel import ExecutionConfig

    outcome = ScenarioOutcome(name=scenario.name, expect=scenario.expect)
    plan = FaultPlan(scenario.specs, seed=seed)
    counters = _Counters()
    run_library = library
    if scenario.corrupt_library:
        # A private copy: the shared (session) library must never see
        # the poison — exactly how a corrupted characterization
        # artifact would arrive without touching the golden models.
        run_library = pickle.loads(pickle.dumps(library))
        faults.apply_table_faults(plan, run_library)

    execution = None
    if scenario.backend != "serial" or scenario.stage_timeout:
        execution = ExecutionConfig(backend=scenario.backend,
                                    workers=scenario.workers,
                                    stage_timeout=scenario.stage_timeout)

    mechanism: Optional[str] = None
    started = time.perf_counter()
    try:
        with faults.installed(plan):
            if scenario.runner is not None:
                result, mechanism = _RUNNERS[scenario.runner](
                    scenario, plan, tech, run_library, graph)
            elif scenario.corrupt_store:
                result = _run_store_scenario(plan, tech, run_library,
                                             graph)
            else:
                analyzer = StaticTimingAnalyzer(
                    tech, library=run_library, execution=execution,
                    resilience=EscalationPolicy())
                result = analyzer.analyze(graph)
        outcome.completed = result.worst is not None
    except Exception as exc:  # noqa: BLE001 - verdict, not control flow
        outcome.error = f"{type(exc).__name__}: {exc}"
        outcome.wall_seconds = time.perf_counter() - started
        return outcome
    outcome.wall_seconds = time.perf_counter() - started

    outcome.faults_injected = counters.delta("resilience.faults.injected")
    outcome.escalations = counters.delta("resilience.escalations")
    outcome.redispatches = counters.delta("sta.parallel.redispatch")
    outcome.quarantines = counters.delta("cache.store_corrupt")
    outcome.degraded_events = len(result.degraded())

    if mechanism is not None:
        outcome.absorbed_by = mechanism
    elif outcome.redispatches > 0:
        outcome.absorbed_by = ABSORB_REDISPATCH
    elif outcome.quarantines > 0:
        outcome.absorbed_by = ABSORB_QUARANTINE
    else:
        outcome.absorbed_by = _worst_quality(result)

    if scenario.name == "baseline":
        outcome.unaffected_identical = True
    elif scenario.scoped_to_stage:
        cone = affected_nets if scenario.specs and \
            scenario.specs[0].stage is not None else set()
        outcome.unaffected_identical = _unaffected_match(
            result, baseline, cone)
    return outcome


# ----------------------------------------------------------------------
# Special run recipes (ChaosScenario.runner dispatch).
#
# Each runner returns ``(result, mechanism)``: the StaResult the
# verdict is read from, and the absorbing mechanism when it is not a
# ladder rung (None falls through to the worst arrival quality).
# ----------------------------------------------------------------------
def _journaled_analyzer(scenario, tech, library, path: str,
                        resume: bool = False, deadline=None):
    from repro.analysis import StaticTimingAnalyzer
    from repro.analysis.parallel import ExecutionConfig

    return StaticTimingAnalyzer(
        tech, library=library,
        execution=ExecutionConfig(
            backend=scenario.backend, workers=scenario.workers,
            journal_path=path, resume=resume, deadline=deadline),
        resilience=EscalationPolicy())


def _runner_kill_resume(scenario, plan, tech, library, graph):
    """Journaled run killed between waves, then resumed to completion."""
    from repro.resilience.faults import RunKilled

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        path = f"{tmp}/run-journal.jsonl"
        try:
            _journaled_analyzer(scenario, tech, library,
                                path).analyze(graph)
        except RunKilled:
            pass
        result = _journaled_analyzer(scenario, tech, library, path,
                                     resume=True).analyze(graph)
    mechanism = (ABSORB_RESUME
                 if getattr(result, "resumed_waves", 0) >= 1 else None)
    return result, mechanism


def _runner_enospc(scenario, plan, tech, library, graph):
    """Journaled run whose flush hits ENOSPC; analysis must survive."""
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        path = f"{tmp}/run-journal.jsonl"
        result = _journaled_analyzer(scenario, tech, library,
                                     path).analyze(graph)
    journal = getattr(result, "journal", None)
    mechanism = (ABSORB_JOURNAL_DISABLED
                 if journal and journal.get("disabled") else None)
    return result, mechanism


def _runner_truncate_resume(scenario, plan, tech, library, graph):
    """Complete a journaled run, mangle the journal tail, resume."""
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        path = f"{tmp}/run-journal.jsonl"
        _journaled_analyzer(scenario, tech, library, path).analyze(graph)
        faults.apply_journal_faults(plan, path)
        result = _journaled_analyzer(scenario, tech, library, path,
                                     resume=True).analyze(graph)
    mechanism = (ABSORB_RESUME
                 if getattr(result, "resumed_waves", 0) >= 1 else None)
    return result, mechanism


def _runner_deadline(scenario, plan, tech, library, graph):
    """Deadline-budgeted run; the exhaust fault forces the bound clamp."""
    from repro.analysis import StaticTimingAnalyzer
    from repro.analysis.parallel import ExecutionConfig

    analyzer = StaticTimingAnalyzer(
        tech, library=library,
        execution=ExecutionConfig(backend=scenario.backend,
                                  workers=scenario.workers,
                                  deadline=scenario.deadline),
        resilience=EscalationPolicy())
    # Mechanism None: the verdict falls through to the worst arrival
    # quality, which must be the bound the clamp routed arcs to.
    return analyzer.analyze(graph), None


_RUNNERS = {
    "kill_resume": _runner_kill_resume,
    "enospc": _runner_enospc,
    "truncate_resume": _runner_truncate_resume,
    "deadline": _runner_deadline,
}


def _run_store_scenario(plan: FaultPlan, tech, library, graph):
    """Write a store, truncate it per plan, reload and re-analyze."""
    from repro.analysis import StaticTimingAnalyzer
    from repro.analysis.parallel import ExecutionConfig

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        store = f"{tmp}/stage_cache.json"
        warm = StaticTimingAnalyzer(
            tech, library=library,
            execution=ExecutionConfig(cache=True, cache_path=store))
        warm.analyze(graph)
        faults.apply_store_faults(plan, store)
        cold = StaticTimingAnalyzer(
            tech, library=library,
            execution=ExecutionConfig(cache=True, cache_path=store))
        return cold.analyze(graph)


def run_matrix(seed: int = 0, bits: int = 2,
               only: Optional[List[str]] = None,
               tech=None, library=None,
               scenarios: Optional[List[ChaosScenario]] = None
               ) -> ChaosReport:
    """Run the chaos matrix and report which rung absorbed each fault.

    Args:
        seed: fault-plan seed (targeting and table poisoning draw from
            it; same seed → same injections → same absorbing rungs).
        bits: decoder width of the target design (stages grow as
            ``2**bits``).
        only: optional scenario-name filter (unknown names raise).
        tech: technology (defaults to the stock 0.35 µm process).
        library: characterized table library (characterized on demand;
            pass the session library in tests to avoid re-charactering).
        scenarios: override the default matrix (mostly for tests).

    The run needs the metrics registry to attribute absorption, so it
    enables telemetry for its own duration when the caller has not;
    a caller-configured telemetry bundle is left untouched.
    """
    from repro.analysis import StaticTimingAnalyzer
    from repro.circuit import builders, extract_stages
    from repro.devices import TableModelLibrary

    if tech is None:
        from repro.devices import CMOSP35
        tech = CMOSP35
    if library is None:
        library = TableModelLibrary(tech)
        library.get("n")
        library.get("p")

    graph = extract_stages(builders.decoder_netlist(tech, bits=bits),
                           tech=tech)
    target = _leaf_stage(graph)
    matrix = scenarios if scenarios is not None \
        else default_scenarios(target)
    if only:
        known = {s.name for s in matrix}
        unknown = [name for name in only if name not in known]
        if unknown:
            raise ValueError(
                f"unknown scenario(s) {unknown}; known: {sorted(known)}")
        matrix = [s for s in matrix if s.name in only]

    owns_telemetry = not telemetry().config.enabled
    if owns_telemetry:
        configure(ObsConfig(enabled=True))
    try:
        baseline = StaticTimingAnalyzer(tech, library=library).analyze(
            graph)
        affected = _fanout_nets(graph, target)
        report = ChaosReport(seed=seed, bits=bits, target_stage=target)
        for scenario in matrix:
            report.outcomes.append(_run_scenario(
                scenario, seed, tech, library, graph, baseline,
                affected))
    finally:
        if owns_telemetry:
            disable()
    return report


# ----------------------------------------------------------------------
# Rendering.
# ----------------------------------------------------------------------
def format_report(report: ChaosReport) -> str:
    """Fixed-width text table of the matrix result."""
    name_w = max([len("scenario")]
                 + [len(o.name) for o in report.outcomes]) + 2
    expect_w = max([len("expected")]
                   + [len("|".join(o.expect)) for o in report.outcomes]) + 2
    absorb_w = max([len("absorbed by")]
                   + [len(str(o.absorbed_by)) for o in report.outcomes]) + 2
    rule = "-" * (name_w + expect_w + absorb_w + len("verdict"))
    lines = [
        f"chaos matrix  (seed {report.seed}, decoder bits={report.bits}, "
        f"target stage {report.target_stage})",
        rule,
        f"{'scenario':<{name_w}}{'expected':<{expect_w}}"
        f"{'absorbed by':<{absorb_w}}verdict",
    ]
    for o in report.outcomes:
        expected = "|".join(o.expect)
        verdict = "ok" if o.absorbed else "FAILED"
        detail = ""
        if o.error:
            detail = f"  ({o.error})"
        elif not o.absorbed and o.unaffected_identical is False:
            detail = "  (fault leaked outside its fanout cone)"
        lines.append(f"{o.name:<{name_w}}{expected:<{expect_w}}"
                     f"{str(o.absorbed_by):<{absorb_w}}{verdict}{detail}")
    lines.append(rule)
    absorbed = sum(1 for o in report.outcomes if o.absorbed)
    lines.append(f"{absorbed}/{len(report.outcomes)} scenarios absorbed")
    return "\n".join(lines)
