"""Crash-safe run journal: append-only wave checkpoints with resume.

A :class:`RunJournal` records each completed scheduling wave's arrival
deltas as one JSONL segment (format :data:`FORMAT`), preceded by a
header that fingerprints the run (design graph, seed arrivals, analysis
options).  Every flush rewrites the ledger through an atomic
``tmp-file -> fsync -> os.replace`` sequence, so a kill at any instant
leaves either the previous consistent ledger or the new one — never a
torn file.  ``repro sta --journal FILE --resume`` validates the
fingerprint, replays completed waves and continues; because each net
has exactly one driver stage, per-wave deltas are disjoint and replay
reproduces arrivals bit-identically (floats round-trip through JSON's
shortest-repr encoding exactly).

Failure policy: a corrupt or truncated tail drops only the damaged
segments (counted in ``resilience.journal.dropped_lines``); a wrong
fingerprint raises :class:`FingerprintMismatch` (resuming someone
else's run would silently corrupt arrivals); an ``OSError`` on flush
(ENOSPC and friends) disables journaling for the rest of the run and
lets the analysis finish — durability degrades before the answer does.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.obs import inc
from repro.resilience import faults
from repro.spice.results import SimulationStats

__all__ = [
    "FORMAT",
    "JournalError",
    "FingerprintMismatch",
    "run_fingerprint",
    "RunJournal",
]

#: Journal on-disk format identifier (header ``format`` field).
FORMAT = "repro-run-journal/1"


class JournalError(RuntimeError):
    """The journal file is unusable (missing, empty, wrong format)."""


class FingerprintMismatch(JournalError):
    """The journal was written by a different run configuration."""


def run_fingerprint(graph, analyzer,
                    input_arrivals: Optional[Dict] = None) -> str:
    """Stable fingerprint of (design, seed arrivals, analysis options).

    Two runs share a fingerprint exactly when replaying one's journal
    into the other is sound: same stage graph (per-stage canonical
    fingerprints), same primary-input arrival seeds, same slew
    propagation settings.  Floats are folded in via ``repr`` so the
    fingerprint is exact, not approximate.
    """
    from repro.analysis.parallel import stage_fingerprint

    stages = sorted(
        (stage.name, stage_fingerprint(stage, analyzer))
        for stage in graph.stages)
    seeds = sorted(
        (str(net), str(direction), repr(float(value)))
        for (net, direction), value in (input_arrivals or {}).items())
    payload = json.dumps(
        [FORMAT, stages, seeds,
         bool(analyzer.propagate_slews),
         repr(float(analyzer.input_slew))],
        sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


def _arrival_to_json(arrival) -> List[object]:
    cause = list(arrival.cause) if arrival.cause is not None else None
    return [arrival.net, arrival.direction, arrival.time, cause,
            arrival.slew, arrival.quality]


def _arrival_from_json(payload: Sequence[object]):
    from repro.analysis.sta import ArrivalTime

    net, direction, when, cause, slew, quality = payload
    return ArrivalTime(
        net=str(net), direction=str(direction), time=float(when),
        cause=tuple(cause) if cause is not None else None,
        slew=float(slew) if slew is not None else None,
        quality=str(quality) if quality is not None else None)


def _stats_to_json(stats: SimulationStats) -> Dict[str, float]:
    return {
        "steps": stats.steps,
        "newton_iterations": stats.newton_iterations,
        "device_evaluations": stats.device_evaluations,
        "wall_time": stats.wall_time,
    }


def _stats_from_json(payload: Dict[str, float]) -> SimulationStats:
    return SimulationStats(
        steps=int(payload.get("steps", 0)),
        newton_iterations=int(payload.get("newton_iterations", 0)),
        device_evaluations=int(payload.get("device_evaluations", 0)),
        wall_time=float(payload.get("wall_time", 0.0)))


class RunJournal:
    """Append-only per-wave checkpoint ledger with atomic flushes."""

    def __init__(self, path: str, fingerprint: str,
                 design: str = "", stages: int = 0,
                 waves: int = 0) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.design = design
        self.stages = stages
        self.waves = waves
        self.segments: Dict[int, Dict] = {}
        self.disabled = False
        self.dropped_lines = 0

    def header(self) -> Dict[str, object]:
        return {
            "format": FORMAT,
            "fingerprint": self.fingerprint,
            "design": self.design,
            "stages": self.stages,
            "waves": self.waves,
        }

    @classmethod
    def load(cls, path: str) -> "RunJournal":
        """Parse a journal, tolerating a corrupt or truncated tail.

        Raises :class:`JournalError` when the header itself is missing
        or unusable; damaged segment lines are dropped and counted.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError as exc:
            raise JournalError(
                f"cannot read run journal {path}: {exc}") from exc
        header = None
        for index, line in enumerate(lines):
            if line.strip():
                try:
                    header = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise JournalError(
                        f"unparseable journal header in {path}"
                    ) from exc
                lines = lines[index + 1:]
                break
        if not isinstance(header, dict) \
                or header.get("format") != FORMAT:
            raise JournalError(
                f"{path} is not a {FORMAT} run journal")
        journal = cls(
            path=path,
            fingerprint=str(header.get("fingerprint", "")),
            design=str(header.get("design", "")),
            stages=int(header.get("stages", 0)),
            waves=int(header.get("waves", 0)))
        dropped = 0
        for line in lines:
            if not line.strip():
                continue
            try:
                segment = json.loads(line)
                wave = int(segment["wave"])
                arrivals = segment["arrivals"]
                for entry in arrivals:
                    _arrival_from_json(entry)
            except (KeyError, TypeError, ValueError,
                    json.JSONDecodeError):
                dropped += 1
                continue
            if wave in journal.segments:
                dropped += 1
                continue
            journal.segments[wave] = segment
        journal.dropped_lines = dropped
        if dropped:
            inc("resilience.journal.dropped_lines", dropped)
        return journal

    def require_fingerprint(self, fingerprint: str) -> None:
        if self.fingerprint != fingerprint:
            raise FingerprintMismatch(
                f"run journal {self.path} fingerprints a different "
                f"run ({self.fingerprint} != {fingerprint}); refusing "
                f"to resume")

    def completed_stages(self) -> Set[str]:
        names: Set[str] = set()
        for segment in self.segments.values():
            names.update(segment.get("stages", ()))
        return names

    def replay(self) -> Iterator[Tuple[int, List[str], Dict,
                                       SimulationStats]]:
        """Yield ``(wave, stage_names, arrival_deltas, stats)``.

        Arrival deltas map ``(net, direction)`` events to
        :class:`~repro.analysis.sta.ArrivalTime` values, exactly as
        the live run produced them.
        """
        for wave in sorted(self.segments):
            segment = self.segments[wave]
            deltas = {}
            for entry in segment.get("arrivals", ()):
                arrival = _arrival_from_json(entry)
                deltas[(arrival.net, arrival.direction)] = arrival
            stats = _stats_from_json(segment.get("stats", {}))
            yield wave, list(segment.get("stages", ())), deltas, stats

    def record_wave(self, wave: int, stage_names: Sequence[str],
                    deltas: Dict, stats: SimulationStats) -> bool:
        """Checkpoint one completed wave; idempotent per wave index.

        Returns ``True`` when the wave was newly recorded and flushed;
        ``False`` when journaling is disabled or the wave was already
        present (the double-resume case).
        """
        if self.disabled or wave in self.segments:
            return False
        arrivals = [
            _arrival_to_json(deltas[event])
            for event in sorted(deltas)]
        self.segments[wave] = {
            "wave": wave,
            "stages": sorted(stage_names),
            "arrivals": arrivals,
            "stats": _stats_to_json(stats),
        }
        return self.flush()

    def flush(self) -> bool:
        """Atomically persist header + segments; self-disable on error."""
        if self.disabled:
            return False
        tmp = self.path + ".tmp"
        try:
            faults.journal_write_gate(self.path)
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(self.header(),
                                        sort_keys=True) + "\n")
                for wave in sorted(self.segments):
                    handle.write(json.dumps(self.segments[wave],
                                            sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            try:
                dir_fd = os.open(
                    os.path.dirname(os.path.abspath(self.path)),
                    os.O_RDONLY)
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
            except OSError:
                pass
        except OSError:
            self.disabled = True
            inc("resilience.journal.write_errors")
            try:
                if os.path.exists(tmp):
                    os.unlink(tmp)
            except OSError:
                pass
            return False
        inc("resilience.journal.flushes")
        return True
