"""Deterministic fault injection for the resilience chaos harness.

A :class:`FaultPlan` is a seeded, declarative list of faults to inject
into a run: NaN-poisoned table-model cells, forced Newton
non-convergence, crashed or hung process-pool workers, truncated
on-disk stage-cache stores, and per-stage wall-clock timeouts.  The
plan is installed process-wide (:func:`install` / :func:`installed`)
and consulted by cheap gates wired into the solver stack:

* :func:`newton_should_fail` — checked at :meth:`repro.linalg.newton.
  NewtonSolver.solve` entry; a match raises ``NewtonConvergenceError``
  with ``reason="fault_injected"``.
* :func:`check_stage_timeout` — checked at
  :meth:`repro.core.engine.WaveformEvaluator.evaluate` entry and
  between escalation-ladder rungs; a match raises
  :class:`StageTimeoutError`.
* :func:`worker_gate` — checked at the top of the process-backend
  stage task; crashes (``os._exit``) or hangs (``time.sleep``) the
  worker, but only inside a real pool worker
  (:func:`mark_worker_process`), so the parent's serial re-dispatch of
  the same stage survives.
* :func:`apply_table_faults` / :func:`apply_store_faults` /
  :func:`apply_journal_faults` — applied by the chaos harness before
  (or between) runs: NaN cells, truncated JSON store, truncated run
  journal.
* :func:`journal_write_gate` / :func:`wave_gate` /
  :func:`deadline_exhaust_gate` — run-durability faults: an injected
  ``ENOSPC`` on journal flush, a hard :class:`RunKilled` between waves
  (the crash the journal+resume path must absorb), and a simulated
  spent deadline that forces the admission controller to clamp.

Every gate is a no-op attribute check while no plan is installed, so
production runs pay nothing.  Targeting is scoped: the STA layer pushes
a thread-local :func:`scope` carrying the stage name and arc start
time, and the escalation ladder pushes the active rung (``qwm``,
``qwm-retry``, ``spice``), so one spec can fail exactly the rungs a
chaos scenario wants to prove degrade correctly.

Determinism: all randomness (which table cells get poisoned) comes
from ``numpy.random.default_rng(plan.seed)``; the Newton/timeout gates
are counting-based (``nth`` / ``count``), not sampled.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.obs import inc
from repro.obs.flight import flight

__all__ = [
    "FAULT_KINDS", "FaultSpec", "FaultPlan", "StageTimeoutError",
    "RunKilled",
    "install", "uninstall", "installed", "active_plan",
    "scope", "scope_default", "current_scope", "mark_worker_process",
    "newton_should_fail", "check_stage_timeout", "worker_gate",
    "journal_write_gate", "wave_gate", "deadline_exhaust_gate",
    "apply_table_faults", "apply_store_faults",
    "apply_journal_faults", "truncate_file",
]

#: The injectable fault classes.
FAULT_KINDS = (
    "nan_table",
    "newton_nonconverge",
    "worker_crash",
    "worker_hang",
    "cache_truncate",
    "stage_timeout",
    "journal_enospc",
    "journal_truncate",
    "run_kill",
    "deadline_exhaust",
)

#: Exit code a fault-crashed pool worker dies with (diagnosable in CI).
WORKER_CRASH_EXIT_CODE = 23


class StageTimeoutError(RuntimeError):
    """A stage arc exceeded its wall-clock budget.

    Raised both by the injected ``stage_timeout`` fault and by the
    escalation ladder's own ``EscalationPolicy.stage_timeout``
    enforcement; the ladder absorbs it by skipping further solver
    rungs and falling through to the switch-level bound.
    """

    def __init__(self, message: str, stage: Optional[str] = None,
                 budget: Optional[float] = None,
                 elapsed: Optional[float] = None):
        super().__init__(message)
        self.stage = stage
        self.budget = budget
        self.elapsed = elapsed


class RunKilled(RuntimeError):
    """An injected hard kill between scheduling waves.

    Raised by :func:`wave_gate` right after a wave's journal segment
    has been flushed — the moment a real ``kill -9`` would be most
    harmful.  The chaos harness catches it, resumes from the journal
    and asserts bit-identical arrivals.
    """

    def __init__(self, message: str, wave: Optional[int] = None):
        super().__init__(message)
        self.wave = wave


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        stage: stage name the fault targets (None = any stage).
        rungs: escalation-ladder rungs a ``newton_nonconverge`` fault
            fires in (empty tuple = any rung, including outside the
            ladder).  Rung-scoped faults are what make per-rung chaos
            scenarios deterministic: failing only ``("qwm",)`` must be
            absorbed by the retry rung, failing
            ``("qwm", "qwm-retry")`` by the SPICE rung, and so on.
        nth: fire only on the Nth gated call that matches (1-based);
            None fires on every match.
        count: maximum number of firings (None = unlimited).
        timeout_seconds: ``stage_timeout`` budget [s] (0 fires on the
            first gated call of the stage).
        hang_seconds: ``worker_hang`` sleep [s] — keep finite so the
            abandoned worker eventually exits.
        fraction: ``nan_table`` fraction of grid cells poisoned (0, 1];
            for ``cache_truncate`` / ``journal_truncate`` the kept byte
            fraction.
        polarity: ``nan_table`` table polarity (``"n"`` or ``"p"``).
        wave: scheduling-wave index a ``run_kill`` fault targets (None
            fires on any newly journaled wave).  Wave targeting is what
            keeps kill->resume deterministic: a resumed run replays the
            targeted wave from the journal instead of re-recording it,
            so the fault cannot re-fire.
    """

    kind: str
    stage: Optional[str] = None
    rungs: Tuple[str, ...] = ()
    nth: Optional[int] = None
    count: Optional[int] = None
    timeout_seconds: float = 0.0
    hang_seconds: float = 2.5
    fraction: float = 0.25
    polarity: str = "n"
    wave: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, "
                             f"got {self.kind!r}")
        if self.nth is not None and self.nth < 1:
            raise ValueError("nth is 1-based")
        if self.count is not None and self.count < 1:
            raise ValueError("count must be >= 1 or None")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.polarity not in ("n", "p"):
            raise ValueError("polarity must be 'n' or 'p'")
        if self.timeout_seconds < 0:
            raise ValueError("timeout_seconds must be non-negative")
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")
        if self.wave is not None and self.wave < 0:
            raise ValueError("wave must be non-negative")

    def to_json(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)
                if getattr(self, f.name) != f.default}

    @classmethod
    def from_json(cls, document: Dict[str, Any]) -> "FaultSpec":
        document = dict(document)
        if "rungs" in document:
            document["rungs"] = tuple(document["rungs"])
        return cls(**document)


class FaultPlan:
    """A seeded set of :class:`FaultSpec` with firing bookkeeping.

    The plan is picklable (it ships to process-pool workers through the
    pool initializer), and its counters are process-local: the parent
    only relies on worker-side counters for the crash/hang gates, whose
    effects (a dead pool, a watchdog timeout) it observes directly.
    """

    def __init__(self, specs: Tuple[FaultSpec, ...] = (), seed: int = 0):
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._calls: Dict[int, int] = {}
        self._fired: Dict[int, int] = {}

    # -- pickling: locks do not pickle ---------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        with self._lock:
            return {"specs": self.specs, "seed": self.seed,
                    "calls": dict(self._calls), "fired": dict(self._fired)}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.specs = tuple(state["specs"])
        self.seed = state["seed"]
        self._lock = threading.Lock()
        self._calls = dict(state["calls"])
        self._fired = dict(state["fired"])

    # ------------------------------------------------------------------
    def _arm(self, index: int) -> bool:
        """Count one gated call of spec ``index``; True when it fires."""
        spec = self.specs[index]
        with self._lock:
            calls = self._calls.get(index, 0) + 1
            self._calls[index] = calls
            fired = self._fired.get(index, 0)
            if spec.nth is not None and calls != spec.nth:
                return False
            if spec.count is not None and fired >= spec.count:
                return False
            self._fired[index] = fired + 1
            return True

    def note_fired(self, index: int) -> None:
        """Record a firing applied outside the counting gates."""
        with self._lock:
            self._calls[index] = self._calls.get(index, 0) + 1
            self._fired[index] = self._fired.get(index, 0) + 1

    def fired(self, kind: Optional[str] = None) -> int:
        """Total firings, optionally restricted to one fault kind."""
        with self._lock:
            return sum(n for i, n in self._fired.items()
                       if kind is None or self.specs[i].kind == kind)

    def matching(self, kind: str) -> Iterator[Tuple[int, FaultSpec]]:
        for index, spec in enumerate(self.specs):
            if spec.kind == kind:
                yield index, spec

    def to_json(self) -> Dict[str, Any]:
        return {"seed": self.seed,
                "specs": [s.to_json() for s in self.specs]}

    @classmethod
    def from_json(cls, document: Dict[str, Any]) -> "FaultPlan":
        return cls(tuple(FaultSpec.from_json(s)
                         for s in document.get("specs", [])),
                   seed=document.get("seed", 0))


# ----------------------------------------------------------------------
# Process-wide installation + thread-local targeting scope.
# ----------------------------------------------------------------------
_PLAN: Optional[FaultPlan] = None
_IN_WORKER = False
_SCOPE = threading.local()


def install(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` process-wide (replacing any previous plan)."""
    global _PLAN
    _PLAN = plan
    return plan


def uninstall() -> None:
    """Remove the installed plan; all gates become no-ops again."""
    global _PLAN
    _PLAN = None


@contextmanager
def installed(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of the block."""
    global _PLAN
    previous = _PLAN
    install(plan)
    try:
        yield plan
    finally:
        _PLAN = previous


def active_plan() -> Optional[FaultPlan]:
    return _PLAN


def mark_worker_process() -> None:
    """Flag this process as a pool worker (enables the worker gates).

    Called by the process-pool initializer; crash/hang faults only fire
    where this flag is set, so the parent's serial re-dispatch of a
    crashed stage cannot re-crash the parent.
    """
    global _IN_WORKER
    _IN_WORKER = True


def _stack() -> list:
    stack = getattr(_SCOPE, "stack", None)
    if stack is None:
        stack = _SCOPE.stack = []
    return stack


class _NullScope:
    def __enter__(self):  # pragma: no cover - trivial
        return None

    def __exit__(self, *exc):  # pragma: no cover - trivial
        return False


_NULL_SCOPE = _NullScope()


@contextmanager
def _pushed(attrs: Dict[str, Any]) -> Iterator[None]:
    stack = _stack()
    stack.append(attrs)
    try:
        yield
    finally:
        stack.pop()


def scope(**attrs: Any):
    """Attach targeting attributes (stage, rung, arc_start) to gates.

    Returns a context manager; a shared no-op when no plan is
    installed, so the hot path pays one module-global read.
    """
    if _PLAN is None:
        return _NULL_SCOPE
    return _pushed(attrs)


def scope_default(**attrs: Any):
    """Like :func:`scope`, but only for keys not already in scope.

    Used by solvers to self-describe (``QWMSolver`` defaults
    ``rung="qwm"``, the adaptive engine ``rung="spice"``) without
    overriding the rung the escalation ladder pushed around them.
    """
    if _PLAN is None:
        return _NULL_SCOPE
    current = current_scope()
    missing = {k: v for k, v in attrs.items() if k not in current}
    if not missing:
        return _NULL_SCOPE
    return _pushed(missing)


def current_scope() -> Dict[str, Any]:
    merged: Dict[str, Any] = {}
    for frame in getattr(_SCOPE, "stack", ()):
        merged.update(frame)
    return merged


def _note_injection(spec: FaultSpec, **extra: Any) -> None:
    inc("resilience.faults.injected", kind=spec.kind)
    fl = flight()
    if fl.enabled:
        fl.record("fault_injected", kind=spec.kind,
                  stage=spec.stage, **extra)


def _stage_matches(spec: FaultSpec, scope_stage: Optional[str]) -> bool:
    return spec.stage is None or spec.stage == scope_stage


# ----------------------------------------------------------------------
# Gates (called from the solver stack).
# ----------------------------------------------------------------------
def newton_should_fail() -> bool:
    """True when an installed ``newton_nonconverge`` fault fires here.

    The caller (:meth:`NewtonSolver.solve`) raises the actual
    ``NewtonConvergenceError`` so this module stays import-light.
    """
    plan = _PLAN
    if plan is None:
        return False
    ctx = current_scope()
    for index, spec in plan.matching("newton_nonconverge"):
        if not _stage_matches(spec, ctx.get("stage")):
            continue
        if spec.rungs and ctx.get("rung") not in spec.rungs:
            continue
        if plan._arm(index):
            _note_injection(spec, rung=ctx.get("rung"))
            return True
    return False


def check_stage_timeout() -> None:
    """Raise :class:`StageTimeoutError` when a timeout fault expires.

    Only meaningful under an STA arc (the STA layer scopes
    ``arc_start``); standalone evaluator calls are never timed out.
    """
    plan = _PLAN
    if plan is None:
        return
    ctx = current_scope()
    arc_start = ctx.get("arc_start")
    if arc_start is None:
        return
    for index, spec in plan.matching("stage_timeout"):
        if not _stage_matches(spec, ctx.get("stage")):
            continue
        elapsed = time.perf_counter() - arc_start
        if elapsed < spec.timeout_seconds:
            continue
        if plan._arm(index):
            _note_injection(spec, elapsed=elapsed)
            raise StageTimeoutError(
                f"injected stage timeout after {elapsed:.3g}s "
                f"(budget {spec.timeout_seconds:.3g}s)",
                stage=ctx.get("stage"), budget=spec.timeout_seconds,
                elapsed=elapsed)


def worker_gate(stage_name: str) -> None:
    """Crash or hang a pool worker about to evaluate ``stage_name``.

    No-op outside marked worker processes — the parent re-dispatching
    the same stage serially must survive.
    """
    plan = _PLAN
    if plan is None or not _IN_WORKER:
        return
    for index, spec in plan.matching("worker_hang"):
        if _stage_matches(spec, stage_name) and plan._arm(index):
            time.sleep(spec.hang_seconds)
    for index, spec in plan.matching("worker_crash"):
        if _stage_matches(spec, stage_name) and plan._arm(index):
            # A hard kill, not an exception: this is what a segfaulted
            # or OOM-killed worker looks like to the parent pool.
            os._exit(WORKER_CRASH_EXIT_CODE)


def journal_write_gate(path: str) -> None:
    """Raise an injected ``ENOSPC`` :class:`OSError` on journal flush.

    Called by :meth:`repro.resilience.journal.RunJournal.flush` before
    any bytes are written; the journal absorbs the error by disabling
    itself for the rest of the run (durability degrades, the analysis
    still completes).
    """
    plan = _PLAN
    if plan is None:
        return
    import errno

    for index, spec in plan.matching("journal_enospc"):
        if plan._arm(index):
            _note_injection(spec, path=path)
            raise OSError(errno.ENOSPC,
                          "injected ENOSPC on journal write", path)


def wave_gate(wave: int) -> None:
    """Raise :class:`RunKilled` after wave ``wave`` was journaled.

    The engine calls this only when :meth:`RunJournal.record_wave`
    newly recorded the wave, so a resumed run (which replays the wave
    instead of re-recording it) never re-triggers the kill.
    """
    plan = _PLAN
    if plan is None:
        return
    for index, spec in plan.matching("run_kill"):
        if spec.wave is not None and spec.wave != wave:
            continue
        if plan._arm(index):
            _note_injection(spec, wave=wave)
            raise RunKilled(
                f"injected run kill after wave {wave} checkpoint",
                wave=wave)


def deadline_exhaust_gate() -> bool:
    """True when an installed ``deadline_exhaust`` fault fires here.

    Consulted by the admission controller on each :meth:`admit` call;
    a firing marks the run budget as permanently spent, forcing the
    clamp ladder to the conservative bound mid-run.
    """
    plan = _PLAN
    if plan is None:
        return False
    for index, spec in plan.matching("deadline_exhaust"):
        if plan._arm(index):
            _note_injection(spec)
            return True
    return False


# ----------------------------------------------------------------------
# Static fault application (run by the chaos harness before a run).
# ----------------------------------------------------------------------
def apply_table_faults(plan: FaultPlan, library) -> int:
    """Poison characterized table-model cells with NaN, per plan.

    The five polynomial I/V coefficients of the selected grid cells
    become NaN; the threshold/saturation planes stay finite so path
    extraction (a structural operation) keeps working and the failure
    surfaces inside the Newton solves, exactly like a corrupted
    characterization artifact would.  Returns the poisoned cell count.
    """
    import math

    import numpy as np

    poisoned = 0
    for index, spec in plan.matching("nan_table"):
        table = library.get(spec.polarity)
        grid = table.grid
        rows = len(grid.fits)
        cols = len(grid.fits[0]) if rows else 0
        total = rows * cols
        if total == 0:
            continue
        want = max(1, int(math.floor(spec.fraction * total)))
        rng = np.random.default_rng(plan.seed + index)
        flat = rng.choice(total, size=min(want, total), replace=False)
        nan = float("nan")
        for cell in sorted(int(c) for c in flat):
            i, j = divmod(cell, cols)
            grid.fits[i][j] = replace(grid.fits[i][j], s1=nan, s0=nan,
                                      t2=nan, t1=nan, t0=nan)
            poisoned += 1
        plan.note_fired(index)
        _note_injection(spec, cells=int(min(want, total)))
    return poisoned


def truncate_file(path: str, keep_fraction: float = 0.5) -> int:
    """Truncate a file to a fraction of its size; returns the new size."""
    size = os.path.getsize(path)
    keep = max(1, int(size * keep_fraction))
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return keep


def apply_store_faults(plan: FaultPlan, path: str) -> bool:
    """Truncate an on-disk stage-cache store, per plan.

    Returns True when a ``cache_truncate`` spec applied.  The fraction
    field doubles as the kept byte fraction.
    """
    applied = False
    for index, spec in plan.matching("cache_truncate"):
        if not os.path.exists(path):
            continue
        truncate_file(path, keep_fraction=spec.fraction)
        plan.note_fired(index)
        _note_injection(spec, path=path)
        applied = True
    return applied


def apply_journal_faults(plan: FaultPlan, path: str) -> bool:
    """Truncate an on-disk run journal, per plan.

    Returns True when a ``journal_truncate`` spec applied; the
    fraction field is the kept byte fraction.  A truncated tail must
    cost at most the damaged waves — resume re-runs them.
    """
    applied = False
    for index, spec in plan.matching("journal_truncate"):
        if not os.path.exists(path):
            continue
        truncate_file(path, keep_fraction=spec.fraction)
        plan.note_fired(index)
        _note_injection(spec, path=path)
        applied = True
    return applied
