"""Resilience: escalation ladder + deterministic fault injection.

Two halves:

* :mod:`repro.resilience.ladder` — the degrade-don't-die escalation
  ladder (``qwm`` → ``qwm-retry`` → ``spice`` → ``bounded``) the STA
  layer runs every stage arc through, and the arrival ``quality`` tag
  vocabulary.
* :mod:`repro.resilience.faults` — a seeded, declarative fault-plan
  harness that injects NaN table cells, forced Newton non-convergence,
  worker crashes/hangs, cache-store truncation and stage timeouts, so
  every rung can be *proven* to absorb the failure class it exists
  for.  :mod:`repro.resilience.chaos` runs the standard scenario
  matrix (``repro chaos``).

Import structure: :mod:`.faults` is imported eagerly (it only needs
numpy/stdlib and the obs layer) so low-level solvers can import its
gates without cycles; :mod:`.ladder` and :mod:`.chaos` sit above the
solver stack and are loaded lazily on first attribute access.
"""

from repro.resilience import faults
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    StageTimeoutError,
)

__all__ = [
    "faults",
    "FAULT_KINDS", "FaultPlan", "FaultSpec", "StageTimeoutError",
    # Lazily resolved (PEP 562):
    "ladder", "chaos",
    "ArcSolveError", "EscalationLadder", "EscalationPolicy",
    "QUALITY_ORDER", "merge_quality",
    "ChaosReport", "ChaosScenario", "ScenarioOutcome",
    "default_scenarios", "format_report", "run_matrix",
]

_LADDER_NAMES = ("ladder", "ArcSolveError", "EscalationLadder",
                 "EscalationPolicy", "QUALITY_ORDER", "merge_quality")
_CHAOS_NAMES = ("chaos", "ChaosReport", "ChaosScenario",
                "ScenarioOutcome", "default_scenarios", "format_report",
                "run_matrix")


def __getattr__(name: str):
    if name in _LADDER_NAMES:
        from repro.resilience import ladder
        return ladder if name == "ladder" else getattr(ladder, name)
    if name in _CHAOS_NAMES:
        from repro.resilience import chaos
        return chaos if name == "chaos" else getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
