"""Resilience: escalation ladder + deterministic fault injection.

Four pieces:

* :mod:`repro.resilience.ladder` — the degrade-don't-die escalation
  ladder (``qwm`` → ``qwm-retry`` → ``spice`` → ``bounded``) the STA
  layer runs every stage arc through, and the arrival ``quality`` tag
  vocabulary.
* :mod:`repro.resilience.faults` — a seeded, declarative fault-plan
  harness that injects NaN table cells, forced Newton non-convergence,
  worker crashes/hangs, cache-store truncation, stage timeouts, and
  the run-durability faults (journal ENOSPC/truncation, between-wave
  kills, deadline exhaustion), so every rung can be *proven* to absorb
  the failure class it exists for.  :mod:`repro.resilience.chaos` runs
  the standard scenario matrix (``repro chaos``).
* :mod:`repro.resilience.budget` — run-level wall-clock budgets
  (``repro sta --deadline``): an admission controller that clamps the
  ladder per wave (full → no-spice → bound) so the run always finishes
  inside deadline+grace with honest quality tags.
* :mod:`repro.resilience.journal` — the crash-safe run journal
  (``repro sta --journal/--resume``): fsync'd per-wave checkpoints a
  killed run resumes from, bit-identically.

Import structure: :mod:`.faults` is imported eagerly (it only needs
numpy/stdlib and the obs layer) so low-level solvers can import its
gates without cycles; :mod:`.ladder`, :mod:`.chaos`, :mod:`.budget`
and :mod:`.journal` sit above the solver stack and are loaded lazily
on first attribute access.
"""

from repro.resilience import faults
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    RunKilled,
    StageTimeoutError,
)

__all__ = [
    "faults",
    "FAULT_KINDS", "FaultPlan", "FaultSpec", "StageTimeoutError",
    "RunKilled",
    # Lazily resolved (PEP 562):
    "ladder", "chaos", "budget", "journal",
    "ArcSolveError", "EscalationLadder", "EscalationPolicy",
    "QUALITY_ORDER", "merge_quality",
    "ChaosReport", "ChaosScenario", "ScenarioOutcome",
    "default_scenarios", "format_report", "run_matrix",
    "RunBudget", "AdmissionController",
    "CLAMP_FULL", "CLAMP_NO_SPICE", "CLAMP_BOUND", "CLAMP_ORDER",
    "RunJournal", "JournalError", "FingerprintMismatch",
    "run_fingerprint",
]

_LADDER_NAMES = ("ladder", "ArcSolveError", "EscalationLadder",
                 "EscalationPolicy", "QUALITY_ORDER", "merge_quality")
_CHAOS_NAMES = ("chaos", "ChaosReport", "ChaosScenario",
                "ScenarioOutcome", "default_scenarios", "format_report",
                "run_matrix")
_BUDGET_NAMES = ("budget", "RunBudget", "AdmissionController",
                 "CLAMP_FULL", "CLAMP_NO_SPICE", "CLAMP_BOUND",
                 "CLAMP_ORDER")
_JOURNAL_NAMES = ("journal", "RunJournal", "JournalError",
                  "FingerprintMismatch", "run_fingerprint")


def __getattr__(name: str):
    if name in _LADDER_NAMES:
        from repro.resilience import ladder
        return ladder if name == "ladder" else getattr(ladder, name)
    if name in _CHAOS_NAMES:
        from repro.resilience import chaos
        return chaos if name == "chaos" else getattr(chaos, name)
    if name in _BUDGET_NAMES:
        from repro.resilience import budget
        return budget if name == "budget" else getattr(budget, name)
    if name in _JOURNAL_NAMES:
        from repro.resilience import journal
        return journal if name == "journal" else getattr(journal, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
