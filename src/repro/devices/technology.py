"""Process technology parameters.

The paper characterizes devices for "the CMOSP35 technology" (a 0.35 um,
3.3 V CMOS process) from HSPICE/BSIM3 sweeps.  Foundry decks are
proprietary, so :data:`CMOSP35` collects textbook 0.35 um-generation
values (Rabaey, *Digital Integrated Circuits*): they produce the same
I/V and capacitance *shapes*, which is what the QWM-vs-SPICE comparison
exercises.

All quantities are strict SI: volts, amps, farads, meters, seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MosParams:
    """Analytic MOSFET model parameters (one polarity).

    Attributes:
        vth0: zero-bias threshold voltage magnitude [V] (positive for both
            polarities; the model applies the sign).
        kp: process transconductance ``mu * Cox`` [A/V^2].
        gamma: body-effect coefficient [sqrt(V)].
        phi: surface potential ``2*phi_F`` [V].
        lambda_: channel-length modulation at the reference length [1/V].
        ecrit: velocity-saturation critical field [V/m].
        cox: gate-oxide capacitance per area [F/m^2].
        cov: gate overlap capacitance per width, each side [F/m].
        cj: zero-bias junction area capacitance [F/m^2].
        cjsw: zero-bias junction sidewall capacitance [F/m].
        pb: junction built-in potential [V].
        mj: area junction grading coefficient.
        mjsw: sidewall junction grading coefficient.
        ldiff: source/drain diffusion extent used for default junction
            geometry [m].
        smoothing: gate-overdrive smoothing parameter [V] blending the
            cutoff/conduction boundary so the model is C1 for Newton.
    """

    vth0: float
    kp: float
    gamma: float
    phi: float
    lambda_: float
    ecrit: float
    cox: float
    cov: float
    cj: float
    cjsw: float
    pb: float
    mj: float
    mjsw: float
    ldiff: float
    smoothing: float = 0.01


@dataclass(frozen=True)
class WireParams:
    """Interconnect electrical parameters (a metal-1-like layer).

    Attributes:
        sheet_resistance: [ohm/square].
        cap_area: capacitance to substrate per area [F/m^2].
        cap_fringe: fringe capacitance per edge length [F/m].
    """

    sheet_resistance: float
    cap_area: float
    cap_fringe: float


@dataclass(frozen=True)
class Technology:
    """A complete process description.

    Attributes:
        name: human-readable process name.
        vdd: nominal supply voltage [V].
        lmin: minimum drawn channel length [m].
        wmin: minimum transistor width [m].
        nmos: NMOS model parameters.
        pmos: PMOS model parameters.
        wire: interconnect parameters.
        temperature: nominal temperature [K] (informational).
    """

    name: str
    vdd: float
    lmin: float
    wmin: float
    nmos: MosParams
    pmos: MosParams
    wire: WireParams
    temperature: float = 300.0

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if self.lmin <= 0 or self.wmin <= 0:
            raise ValueError("minimum geometry must be positive")


#: CMOSP35-like technology: 0.35 um, 3.3 V, textbook device parameters.
CMOSP35 = Technology(
    name="cmosp35",
    vdd=3.3,
    lmin=0.35e-6,
    wmin=0.5e-6,
    nmos=MosParams(
        vth0=0.55,
        kp=175e-6,
        gamma=0.58,
        phi=0.70,
        lambda_=0.06,
        ecrit=4.0e6,
        cox=4.6e-3,
        cov=0.31e-9,
        cj=0.93e-3,
        cjsw=0.28e-9,
        pb=0.90,
        mj=0.50,
        mjsw=0.33,
        ldiff=0.875e-6,
    ),
    pmos=MosParams(
        vth0=0.65,
        kp=60e-6,
        gamma=0.40,
        phi=0.70,
        lambda_=0.10,
        ecrit=15.0e6,
        cox=4.6e-3,
        cov=0.27e-9,
        cj=1.42e-3,
        cjsw=0.33e-9,
        pb=0.90,
        mj=0.48,
        mjsw=0.32,
        ldiff=0.875e-6,
    ),
    wire=WireParams(
        sheet_resistance=0.08,
        cap_area=0.030e-3,
        cap_fringe=0.040e-9,
    ),
)
