"""Process corners: derived fast/slow technology variants.

Timing sign-off evaluates every path at process corners.  A corner here
is a derived :class:`~repro.devices.technology.Technology` with shifted
transconductance and threshold (the first-order knobs of process skew);
each corner gets its own characterization tables, so QWM sees corner
silicon exactly the way it sees nominal silicon.

Naming follows convention: the first letter is the NMOS corner, the
second the PMOS corner — ``tt`` typical, ``ff`` fast/fast, ``ss``
slow/slow, plus the skewed ``fs`` and ``sf``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, Optional, Tuple

from repro.devices.technology import MosParams, Technology

#: Default fractional skews for a "fast" device: stronger drive, lower
#: threshold.  "Slow" mirrors the signs.
KP_SKEW = 0.12
VTH_SKEW = 0.08

_CORNERS = ("tt", "ff", "ss", "fs", "sf")


def _skew_params(params: MosParams, speed: str,
                 kp_skew: float, vth_skew: float) -> MosParams:
    if speed == "t":
        return params
    sign = 1.0 if speed == "f" else -1.0
    return replace(
        params,
        kp=params.kp * (1.0 + sign * kp_skew),
        vth0=params.vth0 * (1.0 - sign * vth_skew),
    )


def corner(tech: Technology, name: str,
           kp_skew: float = KP_SKEW,
           vth_skew: float = VTH_SKEW) -> Technology:
    """Derive a corner technology.

    Args:
        tech: the nominal (typical) technology.
        name: two-letter corner name (``tt``, ``ff``, ``ss``, ``fs``,
            ``sf``); first letter NMOS, second PMOS.
        kp_skew: fractional transconductance skew per ``f``/``s``.
        vth_skew: fractional threshold skew per ``f``/``s``.

    Returns:
        A new :class:`Technology` named ``"<base>_<corner>"``.
    """
    name = name.lower()
    if name not in _CORNERS:
        raise ValueError(f"unknown corner {name!r}; expected one of "
                         f"{_CORNERS}")
    if name == "tt":
        return tech
    n_speed, p_speed = name[0], name[1]
    return replace(
        tech,
        name=f"{tech.name}_{name}",
        nmos=_skew_params(tech.nmos, n_speed, kp_skew, vth_skew),
        pmos=_skew_params(tech.pmos, p_speed, kp_skew, vth_skew),
    )


def all_corners(tech: Technology,
                names: Iterable[str] = _CORNERS
                ) -> Dict[str, Technology]:
    """All requested corners keyed by name."""
    return {name: corner(tech, name) for name in names}


#: Mobility exponent: mu(T) = mu(T0) * (T/T0)^MOBILITY_EXPONENT.
MOBILITY_EXPONENT = -1.5
#: Threshold temperature coefficient [V/K] (magnitude shrinks when hot).
VTH_TEMPCO = -2.0e-3


def at_temperature(tech: Technology, temperature: float) -> Technology:
    """Derive the technology at an operating temperature.

    First-order silicon temperature physics: carrier mobility (hence
    ``kp``) degrades as ``(T/T0)^-1.5`` and the threshold magnitude
    drops ~2 mV/K.  At nominal supplies the mobility term dominates, so
    hot silicon is slow — the standard worst-case-timing condition.

    Args:
        tech: the nominal technology (its ``temperature`` is T0).
        temperature: operating temperature [K].
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive kelvin")
    if temperature == tech.temperature:
        return tech
    ratio = temperature / tech.temperature
    kp_factor = ratio ** MOBILITY_EXPONENT
    dvth = VTH_TEMPCO * (temperature - tech.temperature)

    def shift(params: MosParams) -> MosParams:
        return replace(params,
                       kp=params.kp * kp_factor,
                       vth0=max(params.vth0 + dvth, 0.05))

    return replace(tech,
                   name=f"{tech.name}_{temperature:.0f}K",
                   temperature=temperature,
                   nmos=shift(tech.nmos),
                   pmos=shift(tech.pmos))


def pvt(tech: Technology, corner_name: str = "tt",
        temperature: Optional[float] = None) -> Technology:
    """Combined process + temperature derivation (the PVT point).

    Args:
        tech: nominal technology.
        corner_name: process corner (see :func:`corner`).
        temperature: operating temperature [K]; None keeps nominal.
    """
    derived = corner(tech, corner_name)
    if temperature is not None:
        derived = at_temperature(derived, temperature)
    return derived


def corner_spread(delays: Dict[str, float]) -> Tuple[str, str, float]:
    """Summarize a per-corner delay dict.

    Returns ``(slowest_corner, fastest_corner, spread_fraction)`` where
    the spread is ``(max - min) / min``.
    """
    if not delays:
        raise ValueError("no corner delays supplied")
    slowest = max(delays, key=delays.get)
    fastest = min(delays, key=delays.get)
    spread = (delays[slowest] - delays[fastest]) / delays[fastest]
    return slowest, fastest, spread
