"""Parasitic capacitance models.

The paper's device model (Definition 2) exposes three capacitance
contributions per element — ``srccap``, ``snkcap`` and ``inputcap`` — that
"depend not only on the device geometry, but also the terminal voltages",
with Miller capacitances included.  This module provides:

* voltage-dependent junction capacitance (standard graded-junction form),
* a charge-based *equivalent* junction capacitance over a voltage swing
  (what QWM uses as its constant per-region node capacitance),
* Meyer-style gate capacitance splits (cutoff / triode / saturation),
* wire R and C from geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.technology import MosParams, Technology, WireParams


def junction_capacitance(params: MosParams, w: float,
                         v_reverse: float) -> float:
    """Small-signal junction capacitance of one source/drain diffusion [F].

    Uses default junction geometry from the diffusion extent: area
    ``w * ldiff`` and perimeter ``2 * (w + ldiff)``.

    Args:
        params: MOS parameters (junction coefficients).
        w: device width [m].
        v_reverse: reverse bias across the junction [V]; clamped at
            slight forward bias to keep the expression finite.
    """
    if w <= 0:
        raise ValueError("width must be positive")
    area = w * params.ldiff
    perim = 2.0 * (w + params.ldiff)
    vr = max(v_reverse, -0.5 * params.pb)
    area_term = params.cj * area / (1.0 + vr / params.pb) ** params.mj
    sw_term = params.cjsw * perim / (1.0 + vr / params.pb) ** params.mjsw
    return area_term + sw_term


def _junction_charge(params: MosParams, w: float, v_reverse: float) -> float:
    """Integral of the junction capacitance from 0 to ``v_reverse`` [C]."""
    area = w * params.ldiff
    perim = 2.0 * (w + params.ldiff)
    vr = max(v_reverse, -0.5 * params.pb)

    def integral(c0: float, m: float) -> float:
        # d/dv [ c0*pb/(1-m) * (1+v/pb)^(1-m) ] = c0*(1+v/pb)^-m
        return c0 * params.pb / (1.0 - m) * (
            (1.0 + vr / params.pb) ** (1.0 - m) - 1.0)

    return integral(params.cj * area, params.mj) + integral(
        params.cjsw * perim, params.mjsw)


def equivalent_junction_cap(params: MosParams, w: float,
                            v_from: float, v_to: float) -> float:
    """Large-signal equivalent junction capacitance over a swing [F].

    ``Ceq = (Q(v_to) - Q(v_from)) / (v_to - v_from)`` — the constant
    capacitance that transfers the same charge over the transition.  This
    is what the QWM engine uses as its per-node capacitance, consistent
    with the paper's observation that its implementation does not assume
    constant parasitics yet the per-region model does.
    """
    if abs(v_to - v_from) < 1e-12:
        return junction_capacitance(params, w, v_from)
    dq = _junction_charge(params, w, v_to) - _junction_charge(params, w, v_from)
    return dq / (v_to - v_from)


@dataclass(frozen=True)
class MosCapacitances:
    """Meyer-style gate capacitance split plus junction caps for one device.

    Attributes:
        cgs: gate-to-source capacitance [F] (includes overlap).
        cgd: gate-to-drain capacitance [F] (includes overlap; this is the
            Miller coupling term).
        cgb: gate-to-bulk capacitance [F].
        csb: source-junction capacitance to bulk [F].
        cdb: drain-junction capacitance to bulk [F].
    """

    cgs: float
    cgd: float
    cgb: float
    csb: float
    cdb: float

    @property
    def gate_total(self) -> float:
        """Total capacitance presented at the gate terminal [F]."""
        return self.cgs + self.cgd + self.cgb


def gate_capacitance(params: MosParams, w: float, l: float) -> float:
    """Total (worst-case) input capacitance of a gate terminal [F]."""
    if w <= 0 or l <= 0:
        raise ValueError("geometry must be positive")
    return params.cox * w * l + 2.0 * params.cov * w


def mosfet_capacitances(params: MosParams, w: float, l: float,
                        region: str = "triode",
                        v_src_reverse: float = 0.0,
                        v_drain_reverse: float = 0.0) -> MosCapacitances:
    """Gate-capacitance split and junction caps for one operating region.

    Args:
        params: MOS parameters.
        w: width [m].
        l: length [m].
        region: ``"cutoff"``, ``"triode"`` or ``"saturation"`` (Meyer model).
        v_src_reverse: reverse bias of the source junction [V].
        v_drain_reverse: reverse bias of the drain junction [V].
    """
    cox_total = params.cox * w * l
    cov = params.cov * w
    if region == "cutoff":
        cgs, cgd, cgb = cov, cov, cox_total
    elif region == "triode":
        cgs, cgd, cgb = 0.5 * cox_total + cov, 0.5 * cox_total + cov, 0.0
    elif region == "saturation":
        cgs, cgd, cgb = (2.0 / 3.0) * cox_total + cov, cov, 0.0
    else:
        raise ValueError(f"unknown region {region!r}")
    return MosCapacitances(
        cgs=cgs,
        cgd=cgd,
        cgb=cgb,
        csb=junction_capacitance(params, w, v_src_reverse),
        cdb=junction_capacitance(params, w, v_drain_reverse),
    )


def wire_resistance(wire: WireParams, w: float, l: float) -> float:
    """Wire resistance from geometry: ``rsheet * l / w`` [ohm]."""
    if w <= 0 or l < 0:
        raise ValueError("wire geometry invalid")
    return wire.sheet_resistance * l / w


def wire_capacitance(wire: WireParams, w: float, l: float) -> float:
    """Wire capacitance to substrate: area plus two fringe edges [F]."""
    if w <= 0 or l < 0:
        raise ValueError("wire geometry invalid")
    return wire.cap_area * w * l + 2.0 * wire.cap_fringe * l


def stage_node_capacitance(tech: Technology, *,
                           nmos_widths: tuple = (),
                           pmos_widths: tuple = (),
                           gate_loads: tuple = (),
                           extra: float = 0.0,
                           v_swing: float = None) -> float:
    """Sum the equivalent capacitance at a circuit node [F].

    Convenience used by builders and tests: junction contributions from
    each attached NMOS/PMOS diffusion (large-signal equivalent over the
    supply swing), gate loads ``(w, l, polarity)``, and any extra lumped
    load.
    """
    swing = tech.vdd if v_swing is None else v_swing
    total = extra
    for w in nmos_widths:
        total += equivalent_junction_cap(tech.nmos, w, 0.0, swing)
    for w in pmos_widths:
        total += equivalent_junction_cap(tech.pmos, w, 0.0, swing)
    for w, l, polarity in gate_loads:
        params = tech.nmos if polarity == "n" else tech.pmos
        total += gate_capacitance(params, w, l)
    return total
