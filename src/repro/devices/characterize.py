"""Device characterization: sweep the golden model, fit, compress.

Paper Section V-A: "To characterize transistor I/V relation, we sweep Vs
and Vg from 0 volt to 3.3 volt with a step size of 0.1 volt.  For each
Vs/Vg pair, we then generate polynomial functions to capture the
dependence of channel current on drain voltage Vd using curve fitting.
We use a linear function for the saturation region and a quadratic
function for the triode region.  Together with the threshold voltage and
saturation voltage, we store 7 parameters for each Vs/Vg pair."

This module reproduces that flow against the golden analytic model
(standing in for HSPICE/BSIM3).  PMOS devices are characterized in the
*conduction frame* (voltages mirrored about vdd), which renders them
NMOS-like; the mirroring is undone at query time by
:class:`repro.devices.table_model.TableDeviceModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.devices.mosfet import MosfetModel
from repro.devices.technology import Technology


@dataclass(frozen=True)
class FittedIV:
    """The paper's seven stored parameters for one (Vs, Vg) grid point.

    The polynomials are in ``vds`` (drain-source voltage, forward
    convention ``vds >= 0``):

    * triode  (``vds <= vdsat``):  ``ids = t2*vds^2 + t1*vds + t0``
    * saturation (``vds > vdsat``): ``ids = s1*vds + s0``

    Attributes:
        s1: saturation-region slope [A/V].
        s0: saturation-region intercept [A].
        t2: triode quadratic coefficient [A/V^2].
        t1: triode linear coefficient [A/V].
        t0: triode intercept [A].
        vth: threshold voltage at this source bias [V].
        vdsat: saturation voltage at this (Vs, Vg) [V].
    """

    s1: float
    s0: float
    t2: float
    t1: float
    t0: float
    vth: float
    vdsat: float

    #: Below this vds the fit is blended linearly through the origin:
    #: the physical current is exactly zero at vds = 0, and without the
    #: blend the least-squares intercept t0 would make the current jump
    #: by 2*t0 under a source/drain swap — a kink that derails Newton
    #: when adjacent stack nodes sit within millivolts of each other.
    BLEND_VDS = 0.05

    def _raw_current(self, vds: float) -> float:
        if vds <= self.vdsat:
            return self.t2 * vds * vds + self.t1 * vds + self.t0
        return self.s1 * vds + self.s0

    def _blend_slope(self) -> float:
        return self._raw_current(self.BLEND_VDS) / self.BLEND_VDS

    def current(self, vds: float) -> float:
        """Fitted forward current at ``vds`` [A] (zero at vds = 0)."""
        if vds < self.BLEND_VDS:
            return vds * self._blend_slope()
        return self._raw_current(vds)

    def slope(self, vds: float) -> float:
        """Fitted ``d(ids)/d(vds)`` [S]."""
        if vds < self.BLEND_VDS:
            return self._blend_slope()
        if vds <= self.vdsat:
            return 2.0 * self.t2 * vds + self.t1
        return self.s1


def fit_iv_curve(vds_samples: Sequence[float], ids_samples: Sequence[float],
                 vth: float, vdsat: float) -> FittedIV:
    """Fit the paper's two-piece polynomial model to sampled I/V data.

    Args:
        vds_samples: forward drain-source voltages (>= 0), ascending.
        ids_samples: corresponding currents from the golden model.
        vth: threshold voltage to store alongside the fit.
        vdsat: saturation voltage separating the two fit regions.

    Returns:
        The seven-parameter :class:`FittedIV`.
    """
    vds = np.asarray(vds_samples, dtype=float)
    ids = np.asarray(ids_samples, dtype=float)
    if vds.shape != ids.shape or vds.size < 2:
        raise ValueError("need matching sample arrays with at least 2 points")

    triode_mask = vds <= vdsat
    sat_mask = ~triode_mask

    # Triode quadratic fit (pin to the available degree if samples are few).
    if int(triode_mask.sum()) >= 3:
        t2, t1, t0 = np.polyfit(vds[triode_mask], ids[triode_mask], 2)
    elif int(triode_mask.sum()) == 2:
        t1, t0 = np.polyfit(vds[triode_mask], ids[triode_mask], 1)
        t2 = 0.0
    else:
        # Degenerate (device effectively off below vdsat ~ 0).
        t2, t1, t0 = 0.0, 0.0, float(ids[0])

    # Saturation linear fit.
    if int(sat_mask.sum()) >= 2:
        s1, s0 = np.polyfit(vds[sat_mask], ids[sat_mask], 1)
    elif int(sat_mask.sum()) == 1:
        # One point: take the triode slope at vdsat for continuity.
        s1 = 2.0 * t2 * vdsat + t1
        s0 = float(ids[sat_mask][0]) - s1 * float(vds[sat_mask][0])
    else:
        # Device never saturates inside the sweep; extrapolate the triode
        # polynomial's tangent at the last sample.
        v_end = float(vds[-1])
        s1 = 2.0 * t2 * v_end + t1
        s0 = (t2 * v_end * v_end + t1 * v_end + t0) - s1 * v_end

    return FittedIV(s1=float(s1), s0=float(s0), t2=float(t2),
                    t1=float(t1), t0=float(t0), vth=float(vth),
                    vdsat=float(vdsat))


@dataclass
class CharacterizationGrid:
    """A full (Vs, Vg) grid of :class:`FittedIV` entries for one device.

    Attributes:
        polarity: ``"n"`` or ``"p"``.
        w_ref: width the grid was characterized at [m].
        l_ref: channel length the grid was characterized at [m].
        vdd: supply voltage (also the mirror point for PMOS) [V].
        vs_values: grid axis of source voltages (conduction frame) [V].
        vg_values: grid axis of gate voltages (conduction frame) [V].
        fits: ``fits[i][j]`` is the fit at ``(vs_values[i], vg_values[j])``.
    """

    polarity: str
    w_ref: float
    l_ref: float
    vdd: float
    vs_values: np.ndarray
    vg_values: np.ndarray
    fits: List[List[FittedIV]]
    # Vectorized parameter planes, filled by __post_init__.
    vth_plane: np.ndarray = field(init=False)
    vdsat_plane: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.vs_values = np.asarray(self.vs_values, dtype=float)
        self.vg_values = np.asarray(self.vg_values, dtype=float)
        n_vs, n_vg = self.vs_values.size, self.vg_values.size
        if len(self.fits) != n_vs or any(len(row) != n_vg for row in self.fits):
            raise ValueError("fits shape does not match grid axes")
        self.vth_plane = np.array(
            [[f.vth for f in row] for row in self.fits])
        self.vdsat_plane = np.array(
            [[f.vdsat for f in row] for row in self.fits])

    @property
    def n_parameters(self) -> int:
        """Total stored fit parameters (7 per grid point, as in the paper)."""
        return 7 * self.vs_values.size * self.vg_values.size


def _conduction_query(model: MosfetModel, vdd: float, w: float, l: float,
                      vg_f: float, vs_f: float, vd_f: float) -> float:
    """Forward current in the conduction frame (NMOS-like, ``vd_f >= vs_f``).

    For NMOS the frame is the identity.  For PMOS, frame voltage ``u``
    maps to actual voltage ``vdd - u``; the frame drain (high frame
    voltage) is the actual *low* node, so the frame-forward current is
    the current flowing out of the actual high node into the low one.
    """
    if model.polarity == "n":
        return model.ids(w, l, vg_f, v_src=vd_f, v_snk=vs_f)
    return model.ids(w, l, vdd - vg_f, v_src=vdd - vs_f, v_snk=vdd - vd_f)


def _conduction_threshold(model: MosfetModel, vdd: float, vs_f: float) -> float:
    """Threshold at a conduction-frame source voltage."""
    if model.polarity == "n":
        return model.threshold(vs_f)
    return model.threshold(vdd - vs_f)


def _conduction_vdsat(model: MosfetModel, vdd: float, w: float, l: float,
                      vg_f: float, vs_f: float) -> float:
    """Saturation voltage at a conduction-frame bias point."""
    vd_probe = vs_f + max(vdd - vs_f, 0.1)
    if model.polarity == "n":
        return model.vdsat(w, l, vg_f, v_src=vd_probe, v_snk=vs_f)
    return model.vdsat(w, l, vdd - vg_f, v_src=vdd - vd_probe,
                       v_snk=vdd - vs_f)


def characterize_device(model: MosfetModel, tech: Technology,
                        w: float = None, l: float = None,
                        grid_step: float = 0.1,
                        vds_step: float = 0.05) -> CharacterizationGrid:
    """Characterize one device into a (Vs, Vg) grid of fitted I/V curves.

    Sweeps Vs and Vg from 0 to vdd with ``grid_step`` (the paper's 0.1 V),
    samples the golden model's Vd dependence at ``vds_step`` resolution,
    and fits the two-piece polynomial model at every grid point.

    Args:
        model: the golden analytic model to sample (plays HSPICE/BSIM3).
        tech: technology (supplies vdd and default geometry).
        w: characterization width [m]; defaults to ``2 * tech.wmin``.
        l: channel length [m]; defaults to ``tech.lmin``.  Tables are
            exact in width (current scales linearly) but bound to this
            length.
        grid_step: Vs/Vg grid pitch [V].
        vds_step: Vd sampling pitch for the fits [V].
    """
    w = 2.0 * tech.wmin if w is None else w
    l = tech.lmin if l is None else l
    vdd = tech.vdd
    axis = np.round(np.arange(0.0, vdd + 0.5 * grid_step, grid_step), 9)

    fits: List[List[FittedIV]] = []
    for vs_f in axis:
        row: List[FittedIV] = []
        vds_max = max(vdd - vs_f, grid_step)
        base = np.arange(0.0, vds_max + 0.5 * vds_step, vds_step)
        for vg_f in axis:
            vth = _conduction_threshold(model, vdd, float(vs_f))
            vdsat = _conduction_vdsat(model, vdd, w, l, float(vg_f),
                                      float(vs_f))
            # Always sample the region boundary so both fits anchor there.
            vds_samples = np.unique(
                np.clip(np.append(base, [vdsat, min(vdsat * 0.5, vds_max)]),
                        0.0, vds_max))
            ids_samples = [
                _conduction_query(model, vdd, w, l, float(vg_f),
                                  float(vs_f), float(vs_f + vds))
                for vds in vds_samples
            ]
            row.append(fit_iv_curve(vds_samples, ids_samples, vth, vdsat))
        fits.append(row)

    return CharacterizationGrid(
        polarity=model.polarity, w_ref=w, l_ref=l, vdd=vdd,
        vs_values=axis, vg_values=axis.copy(), fits=fits)
