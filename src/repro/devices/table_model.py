"""The tabular device model consumed by QWM.

Implements the paper's ``DeviceModel`` interface (Definition 2): ``iv``,
``threshold``, ``srccap``, ``snkcap`` and ``inputcap``, backed by a
characterized :class:`~repro.devices.characterize.CharacterizationGrid`.

Off-grid queries bilinearly interpolate the (Vs, Vg) plane; the Vd
dependence comes from each corner's fitted polynomials, so the
derivatives ``dIds/dVd`` and ``dIds/dVs`` needed for the QWM Jacobian
"can be computed very fast" (paper Section V-A) — polynomial slopes plus
interpolation-weight gradients, no re-sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.devices.capacitance import equivalent_junction_cap, gate_capacitance
from repro.devices.characterize import CharacterizationGrid, characterize_device
from repro.devices.mosfet import MosfetModel, nmos_model, pmos_model
from repro.devices.technology import MosParams, Technology
from repro.obs import inc, span
from repro.obs.profile import profile_phase


@dataclass(frozen=True)
class IVQuery:
    """Result of a tabular I/V evaluation with derivatives.

    Attributes:
        ids: current from the structural src node to the snk node [A].
        g_gate: d(ids)/d(v_gate) [S].
        g_src: d(ids)/d(v_src) [S].
        g_snk: d(ids)/d(v_snk) [S].
    """

    ids: float
    g_gate: float
    g_src: float
    g_snk: float


class TableDeviceModel:
    """Paper-style tabular device model for one polarity and channel length.

    Args:
        grid: characterized fit grid (conduction frame).
        params: matching MOS parameters (used only for capacitances).
        length_tolerance: relative tolerance when checking that a query's
            channel length matches the characterized length.
    """

    def __init__(self, grid: CharacterizationGrid, params: MosParams,
                 length_tolerance: float = 1e-6):
        self.grid = grid
        self.params = params
        self.length_tolerance = length_tolerance
        self._vs_axis = grid.vs_values
        self._vg_axis = grid.vg_values
        self._vdd = grid.vdd
        self._sign = 1.0 if grid.polarity == "n" else -1.0
        #: Number of iv_query evaluations (cost accounting for benchmarks).
        self.query_count = 0
        # Uniform-axis fast path for cell lookup (the characterization
        # grid is a fixed-pitch sweep; avoid searchsorted per query).
        self._vs_step = self._uniform_step(self._vs_axis)
        self._vg_step = self._uniform_step(self._vg_axis)

    @staticmethod
    def _uniform_step(axis: np.ndarray) -> Optional[float]:
        if axis.size < 2:
            return None
        steps = np.diff(axis)
        step = float(steps[0])
        if step > 0 and np.allclose(steps, step, rtol=1e-9):
            return step
        return None

    # ------------------------------------------------------------------
    # Frame helpers
    # ------------------------------------------------------------------
    def _to_frame(self, v: float) -> float:
        return v if self.grid.polarity == "n" else self._vdd - v

    def _check_length(self, l: float) -> None:
        if abs(l - self.grid.l_ref) > self.length_tolerance * self.grid.l_ref:
            raise ValueError(
                f"table characterized at L={self.grid.l_ref:.3e} m, queried "
                f"with L={l:.3e} m; use TableModelLibrary for multi-length "
                "designs")

    def _cell(self, axis: np.ndarray, value: float,
              step: Optional[float]) -> Tuple[int, float]:
        """Locate the interpolation cell: returns (index, fraction)."""
        lo = float(axis[0])
        hi = float(axis[-1])
        clipped = lo if value < lo else (hi if value > hi else value)
        if step is not None:
            idx = int((clipped - lo) / step)
            idx = min(max(idx, 0), axis.size - 2)
            return idx, (clipped - lo - idx * step) / step
        idx = int(np.searchsorted(axis, clipped, side="right")) - 1
        idx = min(max(idx, 0), axis.size - 2)
        span = float(axis[idx + 1] - axis[idx])
        return idx, (clipped - float(axis[idx])) / span

    def _frame_query(self, vg_f: float, vs_f: float,
                     vds: float) -> Tuple[float, float, float, float]:
        """Interpolated forward current and frame derivatives.

        Returns ``(q, dq_dg, dq_ds, dq_dd)`` where the derivatives are
        with respect to the frame gate, source and drain node voltages.
        """
        i, u = self._cell(self._vs_axis, vs_f, self._vs_step)
        j, v = self._cell(self._vg_axis, vg_f, self._vg_step)
        dvs = float(self._vs_axis[i + 1] - self._vs_axis[i])
        dvg = float(self._vg_axis[j + 1] - self._vg_axis[j])

        fits = self.grid.fits
        corners = (fits[i][j], fits[i][j + 1], fits[i + 1][j],
                   fits[i + 1][j + 1])
        vals = [f.current(vds) for f in corners]
        slopes = [f.slope(vds) for f in corners]

        w00 = (1.0 - u) * (1.0 - v)
        w01 = (1.0 - u) * v
        w10 = u * (1.0 - v)
        w11 = u * v
        q = (w00 * vals[0] + w01 * vals[1] + w10 * vals[2] + w11 * vals[3])
        dq_dvds = (w00 * slopes[0] + w01 * slopes[1]
                   + w10 * slopes[2] + w11 * slopes[3])
        # Gradient of the bilinear weights along each grid axis.
        dq_dvs_axis = ((1.0 - v) * (vals[2] - vals[0])
                       + v * (vals[3] - vals[1])) / dvs
        dq_dvg_axis = ((1.0 - u) * (vals[1] - vals[0])
                       + u * (vals[3] - vals[2])) / dvg

        dq_dg = dq_dvg_axis
        dq_ds = -dq_dvds + dq_dvs_axis
        dq_dd = dq_dvds
        return q, dq_dg, dq_ds, dq_dd

    # ------------------------------------------------------------------
    # Paper Definition 2 interface
    # ------------------------------------------------------------------
    def iv(self, w: float, l: float, v_gate: float, v_src: float,
           v_snk: float) -> float:
        """Channel current from the src node to the snk node [A]."""
        return self.iv_query(w, l, v_gate, v_src, v_snk).ids

    def iv_query(self, w: float, l: float, v_gate: float, v_src: float,
                 v_snk: float) -> IVQuery:
        """Current plus node-voltage derivatives (for the QWM Jacobian)."""
        self.query_count += 1
        self._check_length(l)
        scale = w / self.grid.w_ref
        g = self._to_frame(v_gate)
        a = self._to_frame(v_src)
        b = self._to_frame(v_snk)
        if a >= b:
            q, dq_dg, dq_ds, dq_dd = self._frame_query(g, b, a - b)
            ids = self._sign * q
            d_src, d_snk, d_gate = dq_dd, dq_ds, dq_dg
        else:
            q, dq_dg, dq_ds, dq_dd = self._frame_query(g, a, b - a)
            ids = -self._sign * q
            d_src, d_snk, d_gate = -dq_ds, -dq_dd, -dq_dg
        # Frame sign and value sign cancel in the derivative chain for
        # PMOS, so node derivatives are frame-agnostic (see module tests).
        return IVQuery(ids=ids * scale, g_gate=d_gate * scale,
                       g_src=d_src * scale, g_snk=d_snk * scale)

    def threshold(self, v_gate: float, v_src: float, v_snk: float) -> float:
        """Threshold magnitude for the effective source (paper Def. 2)."""
        a = self._to_frame(v_src)
        b = self._to_frame(v_snk)
        g = self._to_frame(v_gate)
        vs_f = min(a, b)
        return self._interp_plane(self.grid.vth_plane, vs_f, g)

    def vdsat(self, v_gate: float, v_src: float, v_snk: float) -> float:
        """Saturation voltage at the effective bias [V]."""
        a = self._to_frame(v_src)
        b = self._to_frame(v_snk)
        g = self._to_frame(v_gate)
        return self._interp_plane(self.grid.vdsat_plane, min(a, b), g)

    def _interp_plane(self, plane: np.ndarray, vs_f: float,
                      vg_f: float) -> float:
        i, u = self._cell(self._vs_axis, vs_f, self._vs_step)
        j, v = self._cell(self._vg_axis, vg_f, self._vg_step)
        return float((1.0 - u) * (1.0 - v) * plane[i, j]
                     + (1.0 - u) * v * plane[i, j + 1]
                     + u * (1.0 - v) * plane[i + 1, j]
                     + u * v * plane[i + 1, j + 1])

    def srccap(self, w: float, l: float) -> float:
        """Equivalent source-junction capacitance over the full swing [F]."""
        return equivalent_junction_cap(self.params, w, 0.0, self._vdd)

    def snkcap(self, w: float, l: float) -> float:
        """Equivalent sink-junction capacitance over the full swing [F]."""
        return equivalent_junction_cap(self.params, w, 0.0, self._vdd)

    def inputcap(self, w: float, l: float) -> float:
        """Gate input capacitance [F]."""
        return gate_capacitance(self.params, w, l)


class TableModelLibrary:
    """Lazy cache of :class:`TableDeviceModel` per (polarity, length).

    The paper's tables are bound to one channel length; real stages mix
    lengths, so the library characterizes a fresh grid the first time a
    new length is seen and reuses it afterwards.

    Args:
        tech: technology to characterize against.
        grid_step: Vs/Vg grid pitch forwarded to characterization [V].
    """

    def __init__(self, tech: Technology, grid_step: float = 0.1):
        self.tech = tech
        self.grid_step = grid_step
        self._golden = {"n": nmos_model(tech), "p": pmos_model(tech)}
        self._cache: Dict[Tuple[str, float], TableDeviceModel] = {}

    def golden(self, polarity: str) -> MosfetModel:
        """The underlying golden analytic model (for baselines/tests)."""
        return self._golden[polarity]

    def get(self, polarity: str, l: Optional[float] = None) -> TableDeviceModel:
        """Fetch (characterizing lazily) the table for a polarity/length."""
        if polarity not in ("n", "p"):
            raise ValueError(f"polarity must be 'n' or 'p', got {polarity!r}")
        length = self.tech.lmin if l is None else l
        key = (polarity, round(length, 12))
        if key not in self._cache:
            inc("device.table.cache", result="miss")
            with profile_phase("device.characterize", tag=polarity), \
                    span("device.characterize", polarity=polarity,
                         length=length):
                grid = characterize_device(
                    self._golden[polarity], self.tech, l=length,
                    grid_step=self.grid_step)
            params = (self.tech.nmos if polarity == "n" else self.tech.pmos)
            self._cache[key] = TableDeviceModel(grid, params)
        else:
            inc("device.table.cache", result="hit")
        return self._cache[key]

    def __len__(self) -> int:
        return len(self._cache)
