"""Device-model substrate.

Two model families live here, mirroring the paper's methodology:

* :mod:`repro.devices.mosfet` — the **golden analytic MOSFET model**
  (velocity-saturated, body effect, channel-length modulation).  It plays
  the role of HSPICE's BSIM3: the reference SPICE engine consumes it
  directly, and it is the *only* source of I/V truth in the repository.
* :mod:`repro.devices.table_model` — the **tabular device model** used by
  QWM.  It is *characterized* from sampled sweeps of the golden model
  (:mod:`repro.devices.characterize`), storing seven fitted parameters per
  (Vs, Vg) grid point exactly as the paper's Section V-A describes: a
  linear fit in saturation, a quadratic fit in triode, plus the threshold
  and saturation voltages.

Keeping the two families separate keeps the accuracy comparison honest:
QWM never sees the analytic model, only the table, so fitting and
interpolation error count against QWM just as they do in the paper.
"""

from repro.devices.technology import (
    CMOSP35,
    MosParams,
    Technology,
    WireParams,
)
from repro.devices.mosfet import (
    MosfetModel,
    MosOperatingPoint,
    nmos_model,
    pmos_model,
)
from repro.devices.capacitance import (
    MosCapacitances,
    equivalent_junction_cap,
    gate_capacitance,
    junction_capacitance,
    mosfet_capacitances,
    wire_capacitance,
    wire_resistance,
)
from repro.devices.characterize import (
    CharacterizationGrid,
    FittedIV,
    characterize_device,
    fit_iv_curve,
)
from repro.devices.table_model import TableDeviceModel, TableModelLibrary
from repro.devices.corners import (
    all_corners,
    at_temperature,
    corner,
    corner_spread,
    pvt,
)

__all__ = [
    "all_corners",
    "at_temperature",
    "corner",
    "corner_spread",
    "pvt",
    "CMOSP35",
    "MosParams",
    "Technology",
    "WireParams",
    "MosfetModel",
    "MosOperatingPoint",
    "nmos_model",
    "pmos_model",
    "MosCapacitances",
    "equivalent_junction_cap",
    "gate_capacitance",
    "junction_capacitance",
    "mosfet_capacitances",
    "wire_capacitance",
    "wire_resistance",
    "CharacterizationGrid",
    "FittedIV",
    "characterize_device",
    "fit_iv_curve",
    "TableDeviceModel",
    "TableModelLibrary",
]
