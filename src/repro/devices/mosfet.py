"""Golden analytic MOSFET model (the repository's "silicon truth").

A level-3-style model with:

* body effect (``vth = vth0 + gamma*(sqrt(phi+vsb) - sqrt(phi))``),
* velocity saturation (critical field ``ecrit``; the triode current is
  degraded by ``1 + vds/(ecrit*l)`` and ``vdsat`` solves ``dI/dVds = 0``
  so the triode/saturation join is C1),
* channel-length modulation scaled by the reference length,
* a C1 smoothing of the cutoff boundary so Newton-Raphson never sees a
  derivative jump at ``vgs = vth``,
* full source/drain symmetry (terminals swap automatically when the
  structural sink rises above the structural source).

The SPICE reference engine evaluates this model directly.  The QWM engine
never does: it sees only the tabular model characterized from sampled
sweeps of this model (see :mod:`repro.devices.characterize`), mirroring
the paper's characterize-from-BSIM3 flow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.devices.technology import MosParams, Technology


@dataclass(frozen=True)
class MosOperatingPoint:
    """Current and small-signal derivatives of one device, in node terms.

    The current ``ids`` flows from the *structural* source node to the
    *structural* sink node (positive when the source node is at the higher
    potential for NMOS).  Derivatives are with respect to the node
    voltages, suitable for direct MNA stamping.

    Attributes:
        ids: channel current from src node to snk node [A].
        g_gate: d(ids)/d(v_gate) [S].
        g_src: d(ids)/d(v_src) [S].
        g_snk: d(ids)/d(v_snk) [S].
        vth: threshold voltage seen by the effective source [V].
        vdsat: saturation drain-source voltage [V].
        saturated: True if operating past vdsat.
        swapped: True if the structural snk node acted as the drain.
    """

    ids: float
    g_gate: float
    g_src: float
    g_snk: float
    vth: float
    vdsat: float
    saturated: bool
    swapped: bool


def _forward(params: MosParams, lref: float, w: float, l: float,
             vgs: float, vds: float, vsb: float):
    """Core forward-mode evaluation (n-type convention, ``vds >= 0``).

    Returns ``(i, gm, gds, gmb, vth, vdsat, saturated)`` where the
    derivatives are with respect to ``vgs``, ``vds`` and ``vsb``.
    """
    if vds < 0:
        raise ValueError("_forward requires vds >= 0")
    vsb_clamped = max(vsb, 0.0)
    sqrt_term = math.sqrt(params.phi + vsb_clamped)
    vth = params.vth0 + params.gamma * (sqrt_term - math.sqrt(params.phi))
    dvth_dvsb = params.gamma / (2.0 * sqrt_term) if vsb > 0.0 else 0.0

    # C1 smoothing of the cutoff corner: vgt -> (vgt + sqrt(vgt^2+4d^2))/2.
    delta = params.smoothing
    vgt_raw = vgs - vth
    root = math.sqrt(vgt_raw * vgt_raw + 4.0 * delta * delta)
    vgt = 0.5 * (vgt_raw + root)
    dvgt = 0.5 * (1.0 + vgt_raw / root)

    beta = params.kp * (w / l)
    ecl = params.ecrit * l
    lam = params.lambda_ * (lref / l)

    sat_root = math.sqrt(1.0 + 2.0 * vgt / ecl)
    vdsat = ecl * (sat_root - 1.0)
    dvdsat_dvgt = 1.0 / sat_root

    # The channel-length-modulation factor applies in both regions so
    # the triode/saturation join is C1 in both I and its derivatives.
    clm = 1.0 + lam * vds
    if vds <= vdsat:
        u = vgt * vds - 0.5 * vds * vds
        d = 1.0 + vds / ecl
        i0 = beta * u / d
        i = i0 * clm
        gds = (beta * ((vgt - vds) * d - u / ecl) / (d * d)) * clm \
            + i0 * lam
        dI_dvgt = (beta * vds / d) * clm
        saturated = False
    else:
        u_star = vgt * vdsat - 0.5 * vdsat * vdsat
        d_star = 1.0 + vdsat / ecl
        isat = beta * u_star / d_star
        i = isat * clm
        gds = isat * lam
        # dI/dvgt of isat collapses to beta*vdsat/d_star because
        # dI/dVds = 0 at vdsat (envelope theorem); the clm factor no
        # longer depends on vdsat, so no extra term appears.
        dI_dvgt = (beta * vdsat / d_star) * clm
        saturated = True

    gm = dI_dvgt * dvgt
    gmb = -dI_dvgt * dvgt * dvth_dvsb
    return i, gm, gds, gmb, vth, vdsat, saturated


def _ncore(params: MosParams, lref: float, w: float, l: float,
           v_gate: float, v_src: float, v_snk: float,
           v_bulk: float) -> MosOperatingPoint:
    """Evaluate an n-type core in node terms, handling terminal swap."""
    if v_src >= v_snk:
        # Structural source node is the drain; structural sink is the source.
        vgs = v_gate - v_snk
        vds = v_src - v_snk
        vsb = v_snk - v_bulk
        i, gm, gds, gmb, vth, vdsat, saturated = _forward(
            params, lref, w, l, vgs, vds, vsb)
        # v_src only enters vds; v_snk enters vgs (-), vds (-), vsb (+).
        return MosOperatingPoint(
            ids=i,
            g_gate=gm,
            g_src=gds,
            g_snk=-gm - gds + gmb,
            vth=vth,
            vdsat=vdsat,
            saturated=saturated,
            swapped=False,
        )
    vgs = v_gate - v_src
    vds = v_snk - v_src
    vsb = v_src - v_bulk
    i, gm, gds, gmb, vth, vdsat, saturated = _forward(
        params, lref, w, l, vgs, vds, vsb)
    return MosOperatingPoint(
        ids=-i,
        g_gate=-gm,
        g_src=gm + gds - gmb,
        g_snk=-gds,
        vth=vth,
        vdsat=vdsat,
        saturated=saturated,
        swapped=True,
    )


@dataclass(frozen=True)
class MosfetModel:
    """Analytic MOSFET model bound to one polarity of a technology.

    Attributes:
        polarity: ``"n"`` or ``"p"``.
        params: the process parameters for this polarity.
        lref: reference channel length for channel-length-modulation
            scaling (the technology's ``lmin``).
        v_bulk: bulk terminal voltage (0 for NMOS, vdd for PMOS).
    """

    polarity: str
    params: MosParams
    lref: float
    v_bulk: float

    def __post_init__(self) -> None:
        if self.polarity not in ("n", "p"):
            raise ValueError(f"polarity must be 'n' or 'p', got {self.polarity!r}")

    def evaluate(self, w: float, l: float, v_gate: float,
                 v_src: float, v_snk: float) -> MosOperatingPoint:
        """Full operating point: current plus node-voltage derivatives.

        Args:
            w: channel width [m].
            l: channel length [m].
            v_gate: gate node voltage [V].
            v_src: structural source node voltage [V].
            v_snk: structural sink node voltage [V].
        """
        if w <= 0 or l <= 0:
            raise ValueError("device geometry must be positive")
        if self.polarity == "n":
            return _ncore(self.params, self.lref, w, l,
                          v_gate, v_src, v_snk, self.v_bulk)
        # PMOS by symmetry: I_p(vg, a, b) = -I_ncore(-vg, -a, -b) with the
        # bulk negated too; node-voltage derivatives carry over unchanged
        # because the two sign flips cancel.
        op = _ncore(self.params, self.lref, w, l,
                    -v_gate, -v_src, -v_snk, -self.v_bulk)
        return MosOperatingPoint(
            ids=-op.ids,
            g_gate=op.g_gate,
            g_src=op.g_src,
            g_snk=op.g_snk,
            vth=op.vth,
            vdsat=op.vdsat,
            saturated=op.saturated,
            swapped=op.swapped,
        )

    def ids(self, w: float, l: float, v_gate: float,
            v_src: float, v_snk: float) -> float:
        """Channel current from the src node to the snk node [A]."""
        return self.evaluate(w, l, v_gate, v_src, v_snk).ids

    def threshold(self, v_source: float) -> float:
        """Threshold voltage magnitude for a given effective-source voltage.

        For NMOS the body-to-source reverse bias is ``v_source - v_bulk``;
        for PMOS it is ``v_bulk - v_source``.
        """
        if self.polarity == "n":
            vsb = max(v_source - self.v_bulk, 0.0)
        else:
            vsb = max(self.v_bulk - v_source, 0.0)
        return self.params.vth0 + self.params.gamma * (
            math.sqrt(self.params.phi + vsb) - math.sqrt(self.params.phi))

    def vdsat(self, w: float, l: float, v_gate: float,
              v_src: float, v_snk: float) -> float:
        """Saturation voltage at the given bias [V]."""
        return self.evaluate(w, l, v_gate, v_src, v_snk).vdsat


def nmos_model(tech: Technology) -> MosfetModel:
    """The golden NMOS model of a technology (bulk grounded)."""
    return MosfetModel(polarity="n", params=tech.nmos,
                       lref=tech.lmin, v_bulk=0.0)


def pmos_model(tech: Technology) -> MosfetModel:
    """The golden PMOS model of a technology (bulk at vdd)."""
    return MosfetModel(polarity="p", params=tech.pmos,
                       lref=tech.lmin, v_bulk=tech.vdd)
