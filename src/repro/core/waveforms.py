"""Piecewise-quadratic waveform objects (paper Eq. 6).

Within one region ``[tau, tau']`` the node current is linear,
``I(t) = I_tau + alpha (t - tau)``, so the voltage is the quadratic

    V(t) = V_tau + [I_tau (t - tau) + 0.5 alpha (t - tau)^2] / C.

A :class:`PiecewiseQuadraticWaveform` strings such pieces together and
supports evaluation, sampling, differentiation and level crossings —
the operations timing analysis needs from a waveform.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class QuadraticPiece:
    """One quadratic segment ``v(t) = v0 + slope*(t-t0) + curve*(t-t0)^2``.

    Attributes:
        t0: segment start [s].
        t1: segment end [s] (``t1 > t0``; the final piece of a waveform
            may be extrapolated past ``t1``).
        v0: value at ``t0`` [V].
        slope: first derivative at ``t0`` [V/s] (``I_tau / C``).
        curve: half the second derivative [V/s^2] (``0.5 alpha / C``).
    """

    t0: float
    t1: float
    v0: float
    slope: float
    curve: float

    def __post_init__(self) -> None:
        if not self.t1 > self.t0:
            raise ValueError("piece must have positive duration")

    def value(self, t: float) -> float:
        dt = t - self.t0
        return self.v0 + self.slope * dt + self.curve * dt * dt

    def derivative(self, t: float) -> float:
        return self.slope + 2.0 * self.curve * (t - self.t0)

    def end_value(self) -> float:
        return self.value(self.t1)

    def crossing(self, level: float) -> Optional[float]:
        """Earliest ``t`` in ``[t0, t1]`` with ``v(t) = level``, if any.

        Uses the cancellation-free quadratic formula (Numerical Recipes
        form): ``q = -(b + sign(b) sqrt(disc)) / 2``, roots ``q/a`` and
        ``c/q`` — a nearly-linear piece (tiny ``a``) must not lose its
        root to floating-point cancellation.
        """
        c, b, a = self.v0 - level, self.slope, self.curve
        candidates: List[float] = []
        if abs(a) < 1e-300:
            if abs(b) > 1e-300:
                candidates.append(-c / b)
        else:
            disc = b * b - 4.0 * a * c
            if disc >= 0.0:
                root = math.sqrt(disc)
                sign = 1.0 if b >= 0.0 else -1.0
                q = -0.5 * (b + sign * root)
                if abs(q) > 1e-300:
                    candidates.append(c / q)
                    candidates.append(q / a)
                else:
                    candidates.append(-b / (2.0 * a))
        hits = [self.t0 + dt for dt in candidates
                if -1e-18 <= dt <= (self.t1 - self.t0) + 1e-18]
        return min(hits) if hits else None


class PiecewiseQuadraticWaveform:
    """A voltage waveform assembled from quadratic regions.

    Args:
        pieces: contiguous quadratic segments, ascending in time.

    The waveform extends as a constant before the first piece and
    holds the last piece's end value after it.
    """

    def __init__(self, pieces: Sequence[QuadraticPiece]):
        if not pieces:
            raise ValueError("waveform needs at least one piece")
        self.pieces: List[QuadraticPiece] = list(pieces)
        for a, b in zip(self.pieces, self.pieces[1:]):
            if b.t0 < a.t1 - 1e-18:
                raise ValueError("pieces must be ascending and contiguous")

    # ------------------------------------------------------------------
    @property
    def t_start(self) -> float:
        return self.pieces[0].t0

    @property
    def t_end(self) -> float:
        return self.pieces[-1].t1

    @property
    def breakpoints(self) -> np.ndarray:
        """Region boundaries (the critical points) [s]."""
        times = [p.t0 for p in self.pieces] + [self.pieces[-1].t1]
        return np.asarray(times)

    def _piece_at(self, t: float) -> QuadraticPiece:
        for piece in self.pieces:
            if t <= piece.t1:
                return piece
        return self.pieces[-1]

    def value(self, t: float) -> float:
        """Waveform value at time ``t`` [V]."""
        if t <= self.t_start:
            return self.pieces[0].v0
        if t >= self.t_end:
            return self.pieces[-1].end_value()
        return self._piece_at(t).value(t)

    def derivative(self, t: float) -> float:
        """Time derivative at ``t`` [V/s] (0 outside the defined span)."""
        if t < self.t_start or t > self.t_end:
            return 0.0
        return self._piece_at(t).derivative(t)

    def sample(self, times: np.ndarray) -> np.ndarray:
        """Evaluate on an array of time points."""
        return np.array([self.value(float(t)) for t in np.asarray(times)])

    def crossing_time(self, level: float) -> Optional[float]:
        """Earliest time the waveform reaches ``level``, or None."""
        if abs(self.pieces[0].v0 - level) == 0.0:
            return self.t_start
        for piece in self.pieces:
            hit = piece.crossing(level)
            if hit is not None:
                return hit
        return None

    def final_value(self) -> float:
        return self.pieces[-1].end_value()

    # ------------------------------------------------------------------
    # Waveform algebra
    # ------------------------------------------------------------------
    def integral(self, t0: float, t1: float) -> float:
        """Exact integral of the waveform over ``[t0, t1]`` [V*s].

        Pieces integrate in closed form (cubic antiderivative); the
        constant extensions before/after the defined span contribute
        their flat values.
        """
        if t1 < t0:
            raise ValueError("need t1 >= t0")
        total = 0.0
        # Leading flat region.
        if t0 < self.t_start:
            total += self.pieces[0].v0 * (min(t1, self.t_start) - t0)
        for piece in self.pieces:
            lo = max(t0, piece.t0)
            hi = min(t1, piece.t1)
            if hi <= lo:
                continue
            a, b = lo - piece.t0, hi - piece.t0

            def anti(x: float) -> float:
                return (piece.v0 * x + 0.5 * piece.slope * x * x
                        + piece.curve * x ** 3 / 3.0)

            total += anti(b) - anti(a)
        # Trailing flat region.
        if t1 > self.t_end:
            total += self.final_value() * (t1 - max(t0, self.t_end))
        return total

    def average(self, t0: float, t1: float) -> float:
        """Mean value over a window [V]."""
        if t1 <= t0:
            raise ValueError("need t1 > t0")
        return self.integral(t0, t1) / (t1 - t0)

    def shifted(self, dt: float) -> "PiecewiseQuadraticWaveform":
        """The same waveform translated by ``dt`` in time."""
        return PiecewiseQuadraticWaveform([
            QuadraticPiece(p.t0 + dt, p.t1 + dt, p.v0, p.slope, p.curve)
            for p in self.pieces])

    def tangent_ramp(self, vdd: float,
                     low_frac: float = 0.2,
                     high_frac: float = 0.8):
        """Fit a saturated-ramp driver model to the transition.

        The standard slew abstraction: a ramp through the 20%/80%
        crossings, extrapolated to the full rails.  Returns
        ``(t_start, t_rise, v0, v1)`` suitable for constructing a
        :class:`~repro.spice.sources.RampSource` that drives a
        downstream stage, or None if the waveform never spans the
        fit levels.
        """
        v_begin = self.pieces[0].v0
        v_end = self.final_value()
        if abs(v_end - v_begin) < 0.1 * vdd:
            return None
        lo, hi = low_frac * vdd, high_frac * vdd
        t_lo = self.crossing_time(lo)
        t_hi = self.crossing_time(hi)
        if t_lo is None or t_hi is None or t_lo == t_hi:
            return None
        # Slope through the two crossings, extended to the rails.
        slope = (hi - lo) / (t_hi - t_lo)
        if v_end > v_begin:
            t_start = t_lo - lo / slope
            t_full = vdd / slope
            return (t_start, t_full, 0.0, vdd)
        slope = abs(slope)
        t_start = t_hi - (vdd - hi) / slope
        t_full = vdd / slope
        return (t_start, t_full, vdd, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"PiecewiseQuadraticWaveform({len(self.pieces)} pieces, "
                f"[{self.t_start:.3e}, {self.t_end:.3e}] s)")
