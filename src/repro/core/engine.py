"""Public QWM entry point: the waveform evaluator.

:class:`WaveformEvaluator` ties everything together: it characterizes
(or reuses) the tabular device models, extracts the worst-case pull path
for a requested output transition, runs the QWM schedule, and reports
waveforms, delays and solver statistics.

Example:
    >>> from repro.devices import CMOSP35
    >>> from repro.circuit import builders
    >>> from repro.core import WaveformEvaluator
    >>> from repro.spice import StepSource
    >>> tech = CMOSP35
    >>> stage = builders.nand_gate(tech, 2)
    >>> evaluator = WaveformEvaluator(tech)
    >>> sol = evaluator.evaluate(
    ...     stage, output="out", direction="fall",
    ...     inputs={"a0": StepSource(0.0, tech.vdd, 0.0), "a1": tech.vdd})
    >>> sol.delay() > 0
    True
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.circuit.netlist import LogicStage
from repro.core.path import DischargePath, extract_path
from repro.core.qwm import QWMOptions, QWMSolution, QWMSolver
from repro.linalg.newton import NewtonConvergenceError
from repro.obs import inc, span
from repro.obs.flight import flight
from repro.obs.profile import profile_phase
from repro.resilience import faults
from repro.devices.table_model import TableModelLibrary
from repro.devices.technology import Technology
from repro.spice.sources import SourceLike, as_source


class WaveformEvaluator:
    """Evaluates output waveforms of logic stages with QWM.

    Args:
        tech: process technology.
        library: optional pre-characterized table-model library (shared
            across evaluators to amortize characterization, mirroring
            the paper's one-time device characterization).
        options: QWM scheduler options.
        preflight: when True, lint every stage (structural ERC rules +
            solver options) on first evaluation and raise
            :class:`repro.lint.PreflightError` on error-severity
            findings instead of attempting a solve.
    """

    def __init__(self, tech: Technology,
                 library: Optional[TableModelLibrary] = None,
                 options: Optional[QWMOptions] = None,
                 preflight: bool = False):
        self.tech = tech
        self.library = library or TableModelLibrary(tech)
        self.options = options or QWMOptions()
        self.preflight = preflight
        self._preflighted: set = set()

    def _preflight_stage(self, stage: LogicStage) -> None:
        """Lint a stage once (keyed by identity) before solving it."""
        if not self.preflight or id(stage) in self._preflighted:
            return
        from repro.lint import LintContext, preflight

        with span("engine.preflight", stage=stage.name):
            ctx = LintContext.from_stage(stage, tech=self.tech,
                                         options=self.options)
            ctx.grid_step = getattr(self.library, "grid_step", None)
            preflight(ctx, what=f"stage {stage.name!r}",
                      packs=("erc", "solver"))
        self._preflighted.add(id(stage))

    # ------------------------------------------------------------------
    def extract(self, stage: LogicStage, output: str, direction: str,
                inputs: Dict[str, SourceLike],
                t_final: Optional[float] = None) -> DischargePath:
        """Extract the pull path for one transition (see
        :func:`repro.core.path.extract_path`)."""
        probe = self.options.t_stop if t_final is None else t_final
        return extract_path(stage, output, direction,
                            {k: as_source(v) for k, v in inputs.items()},
                            self.library, t_final=probe)

    def default_initial(self, path: DischargePath,
                        precharge: str = "full",
                        inputs: Optional[Dict[str, SourceLike]] = None,
                        t_start: float = 0.0) -> Dict[str, float]:
        """Default initial node voltages for a worst-case transition.

        Args:
            path: the extracted path.
            precharge: initial-condition style —
                ``"full"``: every path node starts a full swing away
                from the rail (the paper's precharged stacks/decoder);
                ``"degraded"``: internal nodes start one threshold short
                of the swing (a series stack cut off at the bottom,
                e.g. a NAND waiting for its last input);
                ``"dc"``: solve the stage's DC operating point at the
                pre-switching input levels (requires ``inputs``) — the
                physically settled steady state.
            inputs: gate sources, required for ``"dc"``.
            t_start: instant whose input levels seed the DC solve [s].
        """
        vdd = path.vdd
        if precharge not in ("full", "degraded", "dc"):
            raise ValueError("precharge must be 'full', 'degraded' or 'dc'")
        if precharge == "dc":
            if inputs is None:
                raise ValueError("precharge='dc' needs the input sources")
            return self._dc_initial(path, inputs, t_start)
        initial: Dict[str, float] = {}
        for index, name in enumerate(path.node_names):
            u0 = vdd
            if precharge == "degraded" and index < path.length - 1:
                # Internal nodes charged through the stack above settle
                # one (body-affected) threshold below the full frame
                # swing: the fixed point of u = vdd - vth(u), with the
                # gate at its conducting level.
                device = path.devices[index + 1] if index + 1 < len(
                    path.devices) else path.devices[index]
                if device.is_transistor:
                    gate_on = (0.0 if device.kind.value == "pmos"
                               else vdd)
                    u0 = vdd - device.threshold(gate_on, vdd, vdd)
                    for _ in range(8):
                        u0 = vdd - device.threshold(gate_on, u0, u0)
            initial[name] = path.from_frame(u0)
        return initial

    def _dc_initial(self, path: DischargePath,
                    inputs: Dict[str, SourceLike],
                    t_start: float) -> Dict[str, float]:
        """Pre-switching DC operating point of the full stage."""
        from repro.spice.dc import logic_initial_condition, solve_dc
        from repro.spice.mna import StageEquations

        import numpy as np

        stage = path.stage
        sources = {k: as_source(v) for k, v in inputs.items()}
        # Levels just before the schedule starts (pre-step side).
        levels = {name: src.value(t_start - 1e-15)
                  for name, src in sources.items()}
        equations = StageEquations(stage, self.tech)
        seed = logic_initial_condition(stage, levels)
        guess = np.array([seed[name] for name in equations.node_names])
        try:
            solution = solve_dc(equations, levels, initial_guess=guess)
        except (NewtonConvergenceError, np.linalg.LinAlgError,
                FloatingPointError, ZeroDivisionError,
                OverflowError) as exc:
            # A pathological bias (usually a floating pass-transistor
            # net) can defeat the DC continuation; the analytic
            # threshold-degraded estimate is the robust fallback.
            # Only numerical failures are absorbed — a TypeError or a
            # bad stage description must surface, not silently
            # degrade the initial condition.
            inc("engine.dc_fallback", exc=type(exc).__name__)
            return self.default_initial(path, "degraded")
        return {name: float(solution[equations.node_index(name)])
                for name in path.node_names}

    def evaluate(self, stage: LogicStage, output: str, direction: str,
                 inputs: Dict[str, SourceLike],
                 initial: Optional[Dict[str, float]] = None,
                 precharge: str = "full",
                 t_start: float = 0.0) -> QWMSolution:
        """Evaluate one output transition of a stage with QWM.

        Args:
            stage: the logic stage.
            output: output node name.
            direction: ``"fall"`` or ``"rise"`` of the output.
            inputs: gate input name -> source or constant level.
            initial: optional explicit initial node voltages (actual
                volts) for the path nodes; defaults to
                :meth:`default_initial` with the given ``precharge``.
            precharge: initial-condition style when ``initial`` is None.
            t_start: schedule start time [s].

        Returns:
            The QWM solution (waveforms + stats).
        """
        faults.check_stage_timeout()
        with profile_phase("engine.evaluate", tag=stage.name), \
                span("engine.evaluate", stage=stage.name, output=output,
                     direction=direction):
            self._preflight_stage(stage)
            path = self.extract(stage, output, direction, inputs)
            start = self.default_initial(path, precharge, inputs=inputs,
                                         t_start=t_start)
            if initial is not None:
                start.update(initial)
            solver = QWMSolver(path, self.options)
            fl = flight()
            if fl.enabled:
                with fl.context(stage=stage.name, output=output,
                                direction=direction):
                    solution = solver.solve(inputs, start,
                                            t_start=t_start)
                self._capture_bundle(fl, path, inputs, start, t_start)
            else:
                solution = solver.solve(inputs, start, t_start=t_start)
            return solution

    def _capture_bundle(self, fl, path: DischargePath,
                        inputs: Dict[str, SourceLike],
                        start: Dict[str, float],
                        t_start: float) -> None:
        """Serialize a debug bundle if the solve warrants one.

        Two triggers: a region failure the QWM scheduler stashed on the
        recorder, or a caller-forced capture (the golden suite flags
        band violations this way).  Either way the bundle carries the
        evaluator's technology and the exact table slices the path
        used, so it replays with zero re-characterization.
        """
        failure = fl.take_solve_failure()
        forced = fl.consume_force_capture()
        if failure is None and forced is None:
            return
        if not fl.config.capture_bundles or not fl.claim_bundle_slot():
            return
        from repro.obs.bundles import build_bundle, save_bundle

        reason = "solve_failure" if failure is not None else forced
        bundle = build_bundle(
            path, inputs, start, t_start, self.options, reason,
            tech=self.tech,
            grid_step=getattr(self.library, "grid_step", 0.1),
            failure=failure, ledger=fl.to_json(),
            extra=fl.current_context())
        written = save_bundle(
            bundle, fl.config.bundle_dir,
            label=f"{reason}-{path.stage.name}-{path.output}-"
                  f"{path.direction}")
        fl.record("bundle_written", solve_id=(failure or {}).get(
            "solve_id", 0), path=written, reason=reason)

    def delay(self, stage: LogicStage, output: str, direction: str,
              inputs: Dict[str, SourceLike],
              t_input: float = 0.0, **kwargs) -> Optional[float]:
        """Convenience: the 50% propagation delay of one transition [s]."""
        solution = self.evaluate(stage, output, direction, inputs, **kwargs)
        return solution.delay(t_input=t_input)
