"""The per-region matching system (paper Eq. 7 and 9).

One QWM region spans ``[tau, tau']``.  The unknowns are the end-of-region
frame voltages of the ``M`` active nodes plus the end time itself,

    x = [u_1', ..., u_M', tau'].

Linear-current / quadratic-voltage waveforms link the end-of-region
current to the voltages,

    I_k' = 2 C_k (u_k' - u_k) / (tau' - tau) - I_k,

and the matching equations demand that these capacitor currents equal
the difference of the device currents the tabular model predicts,

    F_k = I_k' - (J_{k+1}' - J_k') = 0,          k = 1..M,

closed by a *condition* row that pins tau': either the turn-on of the
next transistor up the path (``gate drive = threshold``) or an output
voltage crossing (the milestone regions after the cascade completes).

The Jacobian is tridiagonal except for its last column (the tau'
derivatives of rows 1..M-1); :meth:`RegionSystem.newton_solve` exploits
this via the Thomas + Sherman-Morrison combination of
:mod:`repro.linalg`, exactly as the paper's Section IV-B prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.path import DischargePath
from repro.obs import inc
from repro.obs.accuracy import CONDITION_TAGS, note_region
from repro.obs.profile import profile_add
from repro.linalg.sherman_morrison import solve_bordered_tridiagonal
from repro.linalg.tridiagonal import TridiagonalMatrix
from repro.linalg.newton import (
    NewtonConvergenceError,
    NewtonOptions,
    NewtonResult,
    NewtonSolver,
)
from repro.spice.sources import Source


@dataclass(frozen=True)
class TurnOnCondition:
    """Region ends when device ``device_index`` (1-based) turns on.

    The condition is paper Eq. 7's last line: the frame gate drive of
    the next transistor equals its threshold,
    ``G_frame(tau') - u_source(tau') = vth``.
    """

    device_index: int


@dataclass(frozen=True)
class CrossingCondition:
    """Region ends when the last active node reaches ``target`` (frame V)."""

    target: float


@dataclass(frozen=True)
class TimeCondition:
    """Region ends at the fixed instant ``t_end``.

    Used to anchor a region boundary on an input-waveform break (a ramp
    ending, a step firing): the Miller injection of a moving gate is
    discontinuous there, so the quadratic link must not span it.
    """

    t_end: float


class RegionSystem:
    """Assembles and solves one region's matching equations.

    Args:
        path: the extracted pull path.
        sources: gate input name -> actual-domain Source.
        active: number of active nodes M (1..K); nodes above M are
            frozen at their region-start values.
        tau: region start time [s].
        u_start: frame voltages of *all* K nodes at tau.
        i_start: frame node currents of all K nodes at tau [A]
            (``I_k = C_k du_k/dt``; negative while discharging).
        condition: the row closing the system.
        caps: per-node capacitances to use for this region [F]; defaults
            to the path's full-swing equivalents.  The solver passes
            span-matched equivalents here (see
            :meth:`DischargePath.equivalent_caps`).
        order: waveform order — 2 (default) is the paper's linear-
            current / quadratic-voltage model with the trapezoidal link
            ``I' = 2C(u'-u)/d - I``; 1 is the constant-current /
            linear-voltage ablation with ``I' = C(u'-u)/d``.
    """

    def __init__(self, path: DischargePath, sources: Dict[str, Source],
                 active: int, tau: float, u_start: np.ndarray,
                 i_start: np.ndarray,
                 condition, caps: Optional[np.ndarray] = None,
                 order: int = 2) -> None:
        if not 1 <= active <= path.length:
            raise ValueError("active node count out of range")
        self.path = path
        self.sources = sources
        self.m = active
        self.tau = tau
        self.u_start = np.asarray(u_start, dtype=float)
        self.i_start = np.asarray(i_start, dtype=float)
        self.condition = condition
        self.caps = (path.node_caps if caps is None
                     else np.asarray(caps, dtype=float))
        if order not in (1, 2):
            raise ValueError("waveform order must be 1 or 2")
        self.order = order
        self.vdd = path.vdd
        self._min_delta = 1e-16
        self._cache_key: Optional[bytes] = None
        self._cache_value = None
        if isinstance(condition, TurnOnCondition):
            if not (2 <= condition.device_index <= path.length):
                raise ValueError("turn-on device index out of range")
            if condition.device_index != active + 1:
                raise ValueError(
                    "turn-on condition must target the device just above "
                    "the active frontier")

    # ------------------------------------------------------------------
    def _gate_actual(self, device_idx: int, t: float) -> float:
        """Actual gate voltage of device ``device_idx`` (1-based) at t."""
        device = self.path.devices[device_idx - 1]
        if device.gate is None:
            return 0.0
        return self.sources[device.gate].value(t)

    def _gate_slope(self, device_idx: int, t: float) -> float:
        device = self.path.devices[device_idx - 1]
        if device.gate is None:
            return 0.0
        return self.sources[device.gate].slope(t)

    def _u_at(self, values: np.ndarray, node_idx: int) -> float:
        """Frame voltage of node ``node_idx`` (0 = rail) given unknowns."""
        if node_idx == 0:
            return 0.0
        if node_idx <= self.m:
            return float(values[node_idx - 1])
        return float(self.u_start[node_idx - 1])  # frozen above frontier

    # ------------------------------------------------------------------
    def residual_and_parts(self, x: np.ndarray) -> Tuple[
            np.ndarray, TridiagonalMatrix, np.ndarray]:
        """Residual, in-band Jacobian, and the extra last-column vector.

        Returns ``(F, A, u_col)`` where the full Jacobian is
        ``A + u_col e_{M+1}^T`` (``u_col`` is zero in its last two rows,
        whose tau' entries live inside the band).  Results are memoized
        on ``x`` since the Newton driver requests the residual and the
        Jacobian separately.
        """
        key = np.asarray(x, dtype=float).tobytes()
        if key == self._cache_key:
            return self._cache_value
        value = self._compute_parts(np.asarray(x, dtype=float))
        self._cache_key = key
        self._cache_value = value
        return value

    def _compute_parts(self, x: np.ndarray) -> Tuple[
            np.ndarray, TridiagonalMatrix, np.ndarray]:
        m = self.m
        n = m + 1
        u_new = x[:m]
        tau_new = float(x[m])
        delta = max(tau_new - self.tau, self._min_delta)
        path = self.path
        caps = self.caps

        f = np.zeros(n)
        diag = np.zeros(n)
        lower = np.zeros(n - 1)
        upper = np.zeros(n - 1)
        last_col = np.zeros(n)

        # Miller injection from moving gates (zero for step inputs away
        # from the step instant; the scheduler handles step kicks).
        injection = path.coupling_injection(self.sources, tau_new)

        # Device currents J_k (device k connects node k-1 and node k).
        # We evaluate devices 1..min(m+1, K): device m+1 (just above the
        # frontier) sees a frozen outer node but still injects current
        # into node m (it is usually sub-threshold there).
        top_device = min(m + 1, path.length)
        currents: List[Tuple[float, float, float, float]] = []
        for k in range(1, top_device + 1):
            device = path.devices[k - 1]
            gate_v = self._gate_actual(k, tau_new)
            j, dj_inner, dj_outer, dj_gate = device.frame_current(
                gate_v, self._u_at(u_new, k - 1), self._u_at(u_new, k),
                self.vdd)
            dj_dtau = dj_gate * self._gate_slope(k, tau_new)
            currents.append((j, dj_inner, dj_outer, dj_dtau))

        order = float(self.order)
        for k in range(1, m + 1):
            c_k = caps[k - 1]
            i_new = (order * c_k
                     * (u_new[k - 1] - self.u_start[k - 1]) / delta
                     - (order - 1.0) * self.i_start[k - 1])
            j_k, djk_in, djk_out, djk_tau = currents[k - 1]
            if k < len(currents) + 1 and k <= top_device - 1:
                j_up, dju_in, dju_out, dju_tau = currents[k]
            else:
                j_up, dju_in, dju_out, dju_tau = 0.0, 0.0, 0.0, 0.0
            row = k - 1
            f[row] = i_new - (j_up - j_k) - injection[k - 1]
            diag[row] = order * c_k / delta + djk_out - dju_in
            if k >= 2:
                lower[row - 1] = djk_in
            if k + 1 <= m:
                upper[row] = -dju_out
            d_tau = (-order * c_k * (u_new[k - 1] - self.u_start[k - 1])
                     / (delta * delta) + djk_tau - dju_tau)
            if k == m:
                upper[m - 1] = d_tau  # in-band: row m, column m+1
            else:
                last_col[row] = d_tau

        # Condition row (row index m, 1-based row m+1).
        if isinstance(self.condition, CrossingCondition):
            f[m] = u_new[m - 1] - self.condition.target
            lower[m - 1] = 1.0
            diag[m] = 0.0
        elif isinstance(self.condition, TimeCondition):
            f[m] = tau_new - self.condition.t_end
            lower[m - 1] = 0.0
            diag[m] = 1.0
        else:
            idx = self.condition.device_index
            device = path.devices[idx - 1]
            gate_v = self._gate_actual(idx, tau_new)
            u_src = float(u_new[m - 1])
            vth = device.threshold(gate_v, u_src, self.vdd)
            h = 1e-3
            vth_hi = device.threshold(gate_v, u_src + h, self.vdd)
            dvth_du = (vth_hi - vth) / h
            g_frame = device.frame_gate(gate_v, self.vdd)
            g_slope = (device.frame_gate_slope_sign()
                       * self._gate_slope(idx, tau_new))
            f[m] = u_src + vth - g_frame
            lower[m - 1] = 1.0 + dvth_du
            diag[m] = -g_slope

        matrix = TridiagonalMatrix(lower=lower, diag=diag, upper=upper)
        return f, matrix, last_col

    def residual(self, x: np.ndarray) -> np.ndarray:
        """Residual only (for the Newton driver)."""
        f, _, _ = self.residual_and_parts(x)
        return f

    def dense_jacobian(self, x: np.ndarray) -> np.ndarray:
        """Full dense Jacobian (fallback path and for testing)."""
        _, matrix, last_col = self.residual_and_parts(x)
        dense = matrix.to_dense()
        dense[:, -1] += last_col
        return dense

    # ------------------------------------------------------------------
    def newton_solve(self, x0: np.ndarray,
                     options: Optional[NewtonOptions] = None,
                     use_sherman_morrison: bool = True,
                     trajectory: Optional[list] = None) -> NewtonResult:
        """Solve the region system from an initial guess.

        The linear solves use the O(K) Thomas + Sherman-Morrison path by
        default, falling back to dense LU if the structured solve hits a
        singular pivot.  ``trajectory`` (a list, when provided) receives
        the per-iteration Newton record — see
        :meth:`repro.linalg.newton.NewtonSolver.solve`.

        Raises:
            NewtonConvergenceError: if Newton fails to converge.
        """
        opts = options or NewtonOptions(
            abstol=1e-10, xtol=1e-15, max_iterations=60)
        solver = NewtonSolver(opts)

        def jacobian(x: np.ndarray):
            _, matrix, last_col = self.residual_and_parts(x)
            return (matrix, last_col)

        # Linear-solve kinds are tallied in plain ints here and flushed
        # to the profiler once per region solve — never per Newton
        # iteration (see lint rule SOL006).
        sm_solves = 0
        lu_solves = 0

        def linear_solve(jac, rhs: np.ndarray) -> np.ndarray:
            nonlocal sm_solves, lu_solves
            matrix, last_col = jac
            if use_sherman_morrison:
                try:
                    out = solve_bordered_tridiagonal(matrix, last_col,
                                                     rhs)
                    sm_solves += 1
                    return out
                except np.linalg.LinAlgError:
                    pass
            dense = matrix.to_dense()
            dense[:, -1] += last_col
            lu_solves += 1
            inc("linalg.solve.dense_lu")
            return np.linalg.solve(dense, rhs)

        try:
            result = solver.solve(self.residual, jacobian, x0,
                                  linear_solve=linear_solve,
                                  trajectory=trajectory)
            # Accuracy-observatory residual export: when an audit has
            # armed a region capture on this thread, note the converged
            # region's final residual norm under the same taxonomy the
            # profiler uses.  Unarmed, this is one thread-local read.
            note_region(CONDITION_TAGS.get(type(self.condition).__name__,
                                           "region"),
                        self.m, result.residual_norm, result.iterations)
            return result
        finally:
            if sm_solves:
                profile_add("sherman_morrison", sm_solves)
            if lu_solves:
                profile_add("dense_lu", lu_solves)
