"""The QWM region scheduler: transient solution at K critical points.

Implements the paper's piecewise strategy (Section IV-A): "divide the
transient process into K regions according to the critical points; then
solve for the parameters of each region by matching currents at the
corresponding critical point."

The schedule for a pull path of K devices:

1. **Activation** — find when the switching input turns the first path
   transistor on (for a step, the step instant).
2. **Cascade regions** — while transistors above the moving frontier are
   still off, each region ends at the next turn-on critical point: the
   frame gate drive of the device above equals its threshold (the
   single-current-peak observation of Fig. 7).  Devices that are already
   (marginally) on — and wire macros, which are always on — advance the
   frontier with a zero-length region.
3. **Milestone regions** — once every device conducts, matching
   continues at fixed output-voltage crossings so the full waveform and
   any delay metric are available.

Every region is one small Newton solve (paper: "complexity equivalent to
only K DC operating point calculations").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.matching import (
    CrossingCondition,
    RegionSystem,
    TimeCondition,
    TurnOnCondition,
)
from repro.circuit.elements import DeviceKind
from repro.core.path import DischargePath
from repro.core.waveforms import PiecewiseQuadraticWaveform, QuadraticPiece
from repro.linalg.newton import NewtonConvergenceError, NewtonOptions
from repro.obs import inc, observe, span
from repro.obs.accuracy import accuracy_region_phase
from repro.obs.flight import flight
from repro.obs.profile import profile_phase
from repro.resilience import faults
from repro.spice.results import SimulationStats, TransientResult
from repro.spice.sources import SourceLike, as_source


@dataclass
class QWMOptions:
    """Controls for :class:`QWMSolver`.

    Attributes:
        milestone_fractions: output frame-voltage crossings (fractions of
            vdd) matched after the turn-on cascade completes.
        newton: Newton controls for the per-region solves.
        turn_on_margin: drive margin [V] under which a device counts as
            already on (zero-length region).
        cascade_substeps: matching points per turn-on region.  1 is the
            paper's baseline (one critical point per transistor); higher
            values insert intermediate voltage-crossing matches inside
            each region, trading solves for accuracy (the paper's
            closing remark: "more sophisticated ... critical point model
            may help further improve speed and accuracy").
        t_stop: absolute time bound for the schedule [s].
        use_sherman_morrison: solve regions with the O(K) bordered-
            tridiagonal path (False = dense LU, for the ablation bench).
        max_retries: initial-guess perturbations tried per region before
            giving up.
    """

    milestone_fractions: Tuple[float, ...] = (
        1.10, 1.00, 0.90, 0.80, 0.70, 0.60, 0.50, 0.40, 0.30, 0.20,
        0.12, 0.06)
    newton: NewtonOptions = field(default_factory=lambda: NewtonOptions(
        abstol=1e-10, xtol=1e-16, max_iterations=40))
    turn_on_margin: float = 2e-3
    cascade_substeps: int = 2
    waveform_order: int = 2
    t_stop: float = 5e-9
    use_sherman_morrison: bool = True
    max_retries: int = 3

    def __post_init__(self) -> None:
        if self.waveform_order not in (1, 2):
            raise ValueError("waveform_order must be 1 (piecewise linear)"
                             " or 2 (piecewise quadratic)")
        # Shared with the SOL002 lint rule so the constructor and the
        # preflight can never disagree about what "degenerate" means.
        from repro.lint.rules_solver import check_milestone_fractions

        problems = check_milestone_fractions(self.milestone_fractions)
        if problems:
            raise ValueError("; ".join(problems))
        if self.t_stop <= 0:
            raise ValueError("t_stop must be positive")
        if self.turn_on_margin < 0:
            raise ValueError("turn_on_margin must be non-negative")
        if self.cascade_substeps < 1:
            raise ValueError("cascade_substeps must be >= 1")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")


@dataclass
class QWMSolution:
    """Result of a QWM evaluation.

    Attributes:
        path: the evaluated pull path.
        waveforms: node name -> piecewise-quadratic waveform in *actual*
            volts (frame conversion already applied).
        critical_times: solved region boundaries [s].
        stats: cost accounting (steps = regions solved).
    """

    path: DischargePath
    waveforms: Dict[str, PiecewiseQuadraticWaveform]
    critical_times: List[float]
    stats: SimulationStats

    @property
    def output_waveform(self) -> PiecewiseQuadraticWaveform:
        return self.waveforms[self.path.node_names[-1]]

    def delay(self, t_input: float = 0.0,
              fraction: float = 0.5) -> Optional[float]:
        """Propagation delay to the output's ``fraction * vdd`` crossing."""
        level = fraction * self.path.vdd
        crossing = self.output_waveform.crossing_time(level)
        if crossing is None:
            return None
        return crossing - t_input

    def to_transient_result(self,
                            times: Optional[np.ndarray] = None
                            ) -> TransientResult:
        """Sample the piecewise waveforms into a TransientResult.

        By default samples exactly at the critical points — the paper
        plots QWM "as straight solid lines connecting the critical
        points calculated by QWM".
        """
        if times is None:
            times = self.output_waveform.breakpoints
        times = np.asarray(times, dtype=float)
        voltages = {name: wave.sample(times)
                    for name, wave in self.waveforms.items()}
        return TransientResult(times=times, voltages=voltages,
                               stats=self.stats, label="qwm")


def _condition_json(condition) -> Dict[str, object]:
    """Serialize a region end condition for the flight ledger."""
    if isinstance(condition, TimeCondition):
        return {"kind": "time", "t_end": float(condition.t_end)}
    if isinstance(condition, CrossingCondition):
        return {"kind": "crossing", "target": float(condition.target)}
    if isinstance(condition, TurnOnCondition):
        return {"kind": "turn_on",
                "device_index": int(condition.device_index)}
    return {"kind": type(condition).__name__}


#: Profiler region-kind tags (the taxonomy's middle axis).
_CONDITION_TAGS = {"TurnOnCondition": "turn_on",
                   "CrossingCondition": "crossing",
                   "TimeCondition": "time"}


class _TableQueryMeter:
    """Incremental drain of a path's table-model query counters.

    ``SimulationStats.device_evaluations`` is accumulated *during* the
    schedule (after every region attempt, plus a final sweep) instead of
    recomputed once at the end, so evaluations spent on retried or
    abandoned regions are counted even if the schedule aborts early.
    The ``device.table.evaluations`` metric is fed the same drained
    deltas, keeping the two views consistent by construction.
    """

    def __init__(self, path: DischargePath):
        self._tables = list({id(d.table): d.table
                             for d in path.devices if d.table}.values())
        self._seen = sum(t.query_count for t in self._tables)

    def drain(self, stats: SimulationStats) -> int:
        """Move new queries into ``stats`` and the metrics counter."""
        now = sum(t.query_count for t in self._tables)
        delta = now - self._seen
        if delta:
            self._seen = now
            stats.device_evaluations += delta
            inc("device.table.evaluations", delta)
        return delta


class QWMSolver:
    """Piecewise quadratic waveform matching on one pull path.

    Args:
        path: extracted by :func:`repro.core.path.extract_path`.
        options: scheduler controls.
    """

    def __init__(self, path: DischargePath,
                 options: Optional[QWMOptions] = None):
        self.path = path
        self.options = options or QWMOptions()
        # Flight-recorder attachment for the current solve (None = off).
        self._fl = None
        self._solve_id = 0

    # ------------------------------------------------------------------
    def solve(self, inputs: Dict[str, SourceLike],
              initial: Dict[str, float],
              t_start: float = 0.0) -> QWMSolution:
        """Run the QWM schedule.

        Args:
            inputs: gate input name -> source (actual domain).
            initial: node name -> initial *actual* voltage [V] for every
                path node.
            t_start: schedule start time [s].

        Returns:
            The solved :class:`QWMSolution`.
        """
        fl = flight()
        if fl.enabled:
            self._fl = fl
            self._solve_id = fl.begin_solve(
                k=self.path.length, direction=self.path.direction,
                output=self.path.output, t_start=t_start)
        else:
            self._fl = None
            self._solve_id = 0
        with span("qwm.solve", k=self.path.length,
                  direction=self.path.direction) as sp, \
                faults.scope_default(rung="qwm",
                                     stage=self.path.stage.name):
            solution = self._run_schedule(inputs, initial, t_start)
            sp.set(regions=solution.stats.steps,
                   newton_iterations=solution.stats.newton_iterations)
        inc("qwm.solves")
        if self._fl is not None:
            self._fl.end_solve(
                self._solve_id, regions=solution.stats.steps,
                newton_iterations=solution.stats.newton_iterations,
                table_queries=solution.stats.device_evaluations,
                wall_seconds=solution.stats.wall_time)
        return solution

    def _run_schedule(self, inputs: Dict[str, SourceLike],
                      initial: Dict[str, float],
                      t_start: float) -> QWMSolution:
        path = self.path
        opts = self.options
        sources = {name: as_source(src) for name, src in inputs.items()}
        for dev in path.devices:
            if dev.is_transistor and dev.gate not in sources:
                raise ValueError(f"missing source for input {dev.gate!r}")

        k_total = path.length
        u = np.array([path.to_frame(initial[name])
                      for name in path.node_names])
        i = np.zeros(k_total)
        pieces: List[List[QuadraticPiece]] = [[] for _ in range(k_total)]
        critical_times: List[float] = [t_start]
        stats = SimulationStats()
        meter = _TableQueryMeter(path)

        wall_start = time.perf_counter()
        tau = t_start
        frontier = 0
        # A step exactly at the schedule start couples its Miller charge
        # immediately (later steps are handled at their activation time).
        u += path.coupling_kick(sources, t_start,
                                path.equivalent_caps(u, u))

        def record(tau0: float, tau1: float, u_new: np.ndarray,
                   i_new: np.ndarray, active: int,
                   caps: Optional[np.ndarray] = None,
                   order: Optional[int] = None) -> None:
            duration = tau1 - tau0
            if duration <= 0:
                return
            if caps is None:
                caps = path.node_caps
            if order is None:
                order = opts.waveform_order
            for k in range(k_total):
                if k >= active:
                    pieces[k].append(QuadraticPiece(
                        t0=tau0, t1=tau1, v0=u[k], slope=0.0, curve=0.0))
                elif order == 1:
                    pieces[k].append(QuadraticPiece(
                        t0=tau0, t1=tau1, v0=u[k],
                        slope=(u_new[k] - u[k]) / duration, curve=0.0))
                else:
                    alpha = (i_new[k] - i[k]) / duration
                    pieces[k].append(QuadraticPiece(
                        t0=tau0, t1=tau1, v0=u[k],
                        slope=i[k] / caps[k],
                        curve=0.5 * alpha / caps[k]))

        # ------------------------------------------------------------
        # Phase 1 + 2: activation and the turn-on cascade.  Whenever the
        # frontier moves without a solve (wire macros, devices already
        # on, the input-driven activation itself), the node currents are
        # re-seeded from the device model: the matching equations make
        # this a no-op at solved boundaries, and it captures the current
        # discontinuity a step input causes.
        # ------------------------------------------------------------
        while frontier < k_total and tau < opts.t_stop:
            next_idx = frontier + 1
            device = path.devices[next_idx - 1]
            if not device.is_transistor:
                frontier = next_idx
                i = self._model_currents(sources, frontier, tau, u)
                continue
            u_src = u[frontier - 1] if frontier >= 1 else 0.0
            if self._drive(device, sources, tau, u_src) >= -opts.turn_on_margin:
                frontier = next_idx
                i = self._model_currents(sources, frontier, tau, u)
                continue
            active_current = (float(np.max(np.abs(i[:frontier])))
                              if frontier > 0 else 0.0)
            if frontier == 0 or active_current < 1e-9:
                # Nothing below the frontier is (meaningfully) moving:
                # the turn-on is purely input-driven, and for a step
                # gate the condition is a discontinuity Newton cannot
                # cross — resolve the instant by bisection instead.
                tau_on = self._activation_time(device, sources, tau,
                                               opts.t_stop, u_src)
                if tau_on is None:
                    break
                record(tau, tau_on, u, i, active=0)
                tau = tau_on
                critical_times.append(tau)
                frontier = next_idx
                # Ideal steps at the activation instant couple charge
                # into the path nodes through the gate (Miller) caps.
                caps_now = path.equivalent_caps(u, u)
                u += path.coupling_kick(sources, tau, caps_now)
                i = self._model_currents(sources, frontier, tau, u)
                continue
            # Solve the turn-on region for the current frontier, with
            # optional intermediate matching points along the way.
            failed = False
            for condition in self._cascade_conditions(
                    device, sources, tau, u, frontier, next_idx):
                solved = self._solve_region(sources, frontier, tau, u, i,
                                            condition, stats, meter)
                if solved is None:
                    failed = True
                    break
                tau_new, u_new, i_new, caps_used, order_used = solved
                record(tau, tau_new, u_new, i_new, active=frontier,
                       caps=caps_used, order=order_used)
                u[:frontier] = u_new[:frontier]
                i[:frontier] = i_new[:frontier]
                tau = tau_new
                critical_times.append(tau)
            if failed:
                if self._fl is not None:
                    self._fl.record("fallback", solve_id=self._solve_id,
                                    fallback="cascade_abort",
                                    frontier=frontier, tau=tau)
                break
            frontier = next_idx
            i = self._model_currents(sources, frontier, tau, u,
                                     fallback=i)

        # ------------------------------------------------------------
        # Phase 3: milestone matching on the output node.
        # ------------------------------------------------------------
        if frontier == k_total:
            # While an input is still ramping, match at fixed instants
            # subdividing the rest of the ramp.  Device current grows
            # convexly with the gate overdrive, so a single region whose
            # linear-in-time current is pinned at the endpoints
            # overestimates the discharged charge; short time-anchored
            # regions bound that error, and no milestone region is left
            # spanning the ramp-end break where the Miller injection
            # switches off discontinuously.
            floor = min(opts.milestone_fractions) * path.vdd
            brk = self._next_input_break(sources, tau)
            while (brk is not None and brk < opts.t_stop
                   and u[k_total - 1] > floor + 1e-6):
                n_sub = max(2 * opts.cascade_substeps, 2)
                ramp_start = tau
                ok = True
                for j in range(1, n_sub + 1):
                    t_j = ramp_start + (brk - ramp_start) * j / n_sub
                    if t_j <= tau + 1e-15:
                        continue
                    solved = self._solve_region(sources, k_total, tau,
                                                u, i, TimeCondition(t_j),
                                                stats, meter,
                                                phase="qwm.phase3")
                    if solved is None:
                        ok = False
                        break
                    tau_new, u_new, i_new, caps_used, order_used = solved
                    record(tau, tau_new, u_new, i_new, active=k_total,
                           caps=caps_used, order=order_used)
                    u[:] = u_new
                    i[:] = i_new
                    tau = tau_new
                    critical_times.append(tau)
                if not ok:
                    break
                brk = self._next_input_break(sources, tau)
            worklist = [f * path.vdd for f in opts.milestone_fractions]
            # Deep-tail targets can sit arbitrarily close to the slow
            # exponential floor; a bounded failure budget keeps a few
            # hard crossings from consuming the whole retry machinery.
            failure_budget = 3
            while worklist and tau < opts.t_stop and failure_budget > 0:
                target = worklist.pop(0)
                if target >= u[k_total - 1] - 1e-6:
                    continue
                condition = CrossingCondition(target)
                solved = self._solve_region(sources, k_total, tau, u, i,
                                            condition, stats, meter,
                                            phase="qwm.phase3")
                # An input-waveform break (a ramp ending) inside the
                # region makes the Miller-injection term discontinuous,
                # which the quadratic link cannot represent — for fast
                # ramps Newton fails outright or converges onto a
                # spurious slow root on the far side.  On failure,
                # anchor a region exactly at the break and retry the
                # milestone from the settled input.
                if solved is None:
                    brk = self._next_input_break(sources, tau)
                    if brk is not None and brk < opts.t_stop:
                        anchored = self._solve_region(
                            sources, k_total, tau, u, i,
                            TimeCondition(brk), stats, meter,
                            phase="qwm.phase3")
                        if self._fl is not None:
                            self._fl.record(
                                "fallback", solve_id=self._solve_id,
                                fallback="ramp_break_anchor", tau=tau,
                                t_break=brk, target=target,
                                recovered=anchored is not None)
                        if anchored is not None:
                            solved = anchored
                            worklist.insert(0, target)
                if solved is None:
                    failure_budget -= 1
                    # Split the crossing: aim for the midpoint first.
                    mid = 0.5 * (u[k_total - 1] + target)
                    if u[k_total - 1] - mid > 5e-3:
                        if self._fl is not None:
                            self._fl.record(
                                "fallback", solve_id=self._solve_id,
                                fallback="region_subdivision", tau=tau,
                                target=target, midpoint=mid)
                        worklist[:0] = [mid, target]
                        continue
                    break
                tau_new, u_new, i_new, caps_used, order_used = solved
                record(tau, tau_new, u_new, i_new, active=k_total,
                       caps=caps_used, order=order_used)
                u[:] = u_new
                i[:] = i_new
                tau = tau_new
                critical_times.append(tau)

        stats.wall_time = time.perf_counter() - wall_start
        meter.drain(stats)

        waveforms: Dict[str, PiecewiseQuadraticWaveform] = {}
        for k, name in enumerate(path.node_names):
            node_pieces = pieces[k]
            if not node_pieces:
                node_pieces = [QuadraticPiece(
                    t0=t_start, t1=max(tau, t_start + 1e-15),
                    v0=u[k], slope=0.0, curve=0.0)]
            if path.direction == "rise":
                node_pieces = [QuadraticPiece(
                    t0=p.t0, t1=p.t1, v0=path.vdd - p.v0,
                    slope=-p.slope, curve=-p.curve) for p in node_pieces]
            waveforms[name] = PiecewiseQuadraticWaveform(node_pieces)

        return QWMSolution(path=path, waveforms=waveforms,
                           critical_times=critical_times, stats=stats)

    # ------------------------------------------------------------------
    def _model_currents(self, sources, frontier: int, tau: float,
                        u: np.ndarray,
                        fallback: Optional[np.ndarray] = None) -> np.ndarray:
        """Node currents implied by the device model at a frontier state.

        ``I_k = J_{k+1} - J_k`` for the active nodes (evaluating the
        device just above the frontier too, which carries only its
        sub-threshold current there); frozen nodes keep zero (or their
        ``fallback`` value).
        """
        path = self.path
        k_total = path.length
        i = np.zeros(k_total) if fallback is None else fallback.copy()
        top = min(frontier + 1, k_total)
        currents = np.zeros(k_total + 2)
        for k in range(1, top + 1):
            device = path.devices[k - 1]
            gate_v = (sources[device.gate].value(tau)
                      if device.gate else 0.0)
            u_inner = u[k - 2] if k >= 2 else 0.0
            currents[k], _, _, _ = device.frame_current(
                gate_v, u_inner, u[k - 1], path.vdd)
        injection = path.coupling_injection(sources, tau)
        for k in range(1, frontier + 1):
            i[k - 1] = currents[k + 1] - currents[k] + injection[k - 1]
        return i

    def _cascade_conditions(self, device, sources, tau: float,
                            u: np.ndarray, frontier: int,
                            next_idx: int) -> List[object]:
        """Conditions for one turn-on region (with optional substeps).

        The final condition is always the exact turn-on of device
        ``next_idx``; with ``cascade_substeps > 1``, intermediate
        crossings of the frontier node are matched first, splitting the
        voltage gap evenly.
        """
        n_sub = max(self.options.cascade_substeps, 1)
        conditions: List[object] = []
        if n_sub > 1:
            gate_v = sources[device.gate].value(tau)
            u_now = u[frontier - 1]
            vth = device.threshold(gate_v, u_now, self.path.vdd)
            u_target = device.frame_gate(gate_v, self.path.vdd) - vth
            gap = u_target - u_now
            # Substeps only make sense for a node-driven turn-on (the
            # source node falling toward a non-negative target); an
            # input-driven turn-on (gate still ramping, target below
            # ground) is resolved purely by the final condition's time
            # axis.
            if gap < -5e-3 and u_target >= 0.0:
                for j in range(1, n_sub):
                    conditions.append(
                        CrossingCondition(u_now + gap * j / n_sub))
        conditions.append(TurnOnCondition(next_idx))
        return conditions

    def _drive(self, device, sources, t: float, u_src: float) -> float:
        """Frame gate drive minus threshold for a path transistor."""
        gate_v = sources[device.gate].value(t)
        vth = device.threshold(gate_v, u_src, self.path.vdd)
        return device.frame_gate(gate_v, self.path.vdd) - u_src - vth

    def _activation_time(self, device, sources, t0: float, t1: float,
                         u_src: float) -> Optional[float]:
        """Earliest t in [t0, t1] where the device's drive reaches zero."""
        if self._drive(device, sources, t1, u_src) < 0:
            return None
        lo, hi = t0, t1
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if self._drive(device, sources, mid, u_src) >= 0:
                hi = mid
            else:
                lo = mid
        return hi

    def _next_input_break(self, sources, t: float) -> Optional[float]:
        """Earliest upcoming waveform break over the path's gates."""
        earliest = None
        for device in self.path.devices:
            if not device.is_transistor:
                continue
            brk = sources[device.gate].next_break(t)
            if brk is not None and (earliest is None or brk < earliest):
                earliest = brk
        return earliest

    def _initial_guess(self, sources, active: int, tau: float,
                       u: np.ndarray, i: np.ndarray, condition,
                       scale: float = 1.0) -> np.ndarray:
        """Rate-based extrapolation seed for a region solve."""
        path = self.path
        vdd = path.vdd
        # Instantaneous device currents at the region start.
        top = min(active + 1, path.length)
        currents = np.zeros(path.length + 2)
        for k in range(1, top + 1):
            device = path.devices[k - 1]
            gate_v = (sources[device.gate].value(tau)
                      if device.gate else 0.0)
            u_inner = u[k - 2] if k >= 2 else 0.0
            currents[k], _, _, _ = device.frame_current(
                gate_v, u_inner, u[k - 1], vdd)
        rates = np.array([
            (currents[k + 1] - currents[k]) / path.node_caps[k - 1]
            for k in range(1, active + 1)])

        if isinstance(condition, TimeCondition):
            # The end time is pinned; only the voltages are unknown.
            delta0 = max(condition.t_end - tau, 1e-14) * scale
            guess = np.empty(active + 1)
            for k in range(active):
                guess[k] = float(np.clip(u[k] + rates[k] * delta0,
                                         0.0, u[k]))
            self._couple_wire_nodes(guess, u, active)
            guess[active] = condition.t_end
            return guess
        if isinstance(condition, CrossingCondition):
            target = condition.target
        else:
            device = path.devices[condition.device_index - 1]
            gate_v = sources[device.gate].value(tau)
            vth = device.threshold(gate_v, u[active - 1], vdd)
            target = device.frame_gate(gate_v, vdd) - vth
            if target <= u[active - 1] - 2.0 * vdd or target < -0.1:
                target = u[active - 1]  # degenerate; rely on time guess
            # If the gate itself is still moving (a ramping input), the
            # turn-on is (partly) input-driven: estimate the time by
            # bisection with the source node frozen and take the gate
            # level there as the target.
            if abs(sources[device.gate].slope(tau)) > 1e6:
                t_on = self._activation_time(
                    device, sources, tau, self.options.t_stop,
                    u[active - 1])
                if t_on is not None and t_on > tau:
                    gate_on = sources[device.gate].value(t_on)
                    vth_on = device.threshold(gate_on, u[active - 1],
                                              vdd)
                    target = device.frame_gate(gate_on, vdd) - vth_on
                    delta0 = (t_on - tau) * scale
                    delta0 = min(max(delta0, 1e-14), 2e-9)
                    guess = np.empty(active + 1)
                    for k in range(active):
                        guess[k] = float(np.clip(
                            u[k] + rates[k] * delta0, 0.0, u[k]))
                    guess[active - 1] = float(np.clip(target, 0.0,
                                                      1.5 * vdd))
                    guess[active] = tau + delta0
                    return guess
        rate_top = rates[active - 1]
        gap = target - u[active - 1]
        if rate_top < -1e-3 and gap < 0:
            delta0 = gap / rate_top
        else:
            # Crude RC estimate from the bottom device's on current.
            i_on = max(abs(currents[1]), 1e-7)
            delta0 = abs(gap) * path.node_caps[active - 1] / i_on + 1e-13
        # A still-ramping bottom gate makes both estimates above badly
        # pessimistic: the start-of-region current is barely above
        # threshold, so the implied rate is orders of magnitude below
        # the drive the region will actually see, ballooning the seed
        # toward the clamp and stranding Newton far past the crossing.
        # Bound the seed by "rest of the ramp, then traverse the gap at
        # the fully-ramped current".
        bottom = path.devices[0]
        if bottom.is_transistor \
                and abs(sources[bottom.gate].slope(tau)) > 1e6:
            gate_end = sources[bottom.gate].value(self.options.t_stop)
            i_end, _, _, _ = bottom.frame_current(gate_end, 0.0, u[0],
                                                  vdd)
            if abs(i_end) > 1e-7:
                ramp_left = (abs(gate_end
                                 - sources[bottom.gate].value(tau))
                             / abs(sources[bottom.gate].slope(tau)))
                delta_on = (ramp_left
                            + abs(gap) * path.node_caps[active - 1]
                            / abs(i_end) + 1e-13)
                delta0 = min(delta0, delta_on)
        delta0 *= scale
        delta0 = min(max(delta0, 1e-14), 2e-9)

        guess = np.empty(active + 1)
        for k in range(active):
            guess[k] = float(np.clip(u[k] + rates[k] * delta0, 0.0, u[k]))
        guess[active - 1] = float(np.clip(target, 0.0, 1.5 * vdd))
        self._couple_wire_nodes(guess, u, active)
        guess[active] = tau + delta0
        return guess

    def _couple_wire_nodes(self, guess: np.ndarray, u: np.ndarray,
                           active: int) -> None:
        """Seed wire-connected neighbors together (stiff coupling).

        A collapsed pi wire has ohms of resistance; leaving one end at
        its old voltage while the other jumps to the target hands
        Newton an ampere-scale residual it may not recover from.
        """
        for k in range(active - 1, 0, -1):
            device = self.path.devices[k]
            if device.kind is not DeviceKind.WIRE:
                continue
            coupled = min(guess[k], u[k - 1])
            guess[k - 1] = float(np.clip(coupled, 0.0, u[k - 1]))

    def _solve_region(self, sources, active: int, tau: float,
                      u: np.ndarray, i: np.ndarray, condition,
                      stats: SimulationStats,
                      meter: Optional["_TableQueryMeter"] = None,
                      phase: str = "qwm.phase12"
                      ) -> Optional[Tuple[float, np.ndarray, np.ndarray,
                                          np.ndarray, int]]:
        """Solve one region with retries.

        Returns ``(tau', u', i', caps_used, order_used)`` or None on
        failure.  The solve runs twice when needed: once with
        capacitances matched to the *predicted* voltage span, then
        refined with the solved span (junction caps are bias dependent).

        If every attempt with the configured waveform order fails, the
        region is retried with the order-1 (constant-current) link: the
        trapezoidal order-2 link is inconsistent for *long* regions
        whose nodes carry sustained pass-through current (it forces the
        end current toward minus the start current), while the order-1
        link degrades gracefully to the quasi-static limit.
        """
        path = self.path
        opts = self.options
        rec = self._fl
        scales = [(s, opts.waveform_order)
                  for s in [1.0, 0.3, 3.0, 0.1][:max(opts.max_retries, 1)]]
        if opts.waveform_order != 1:
            scales += [(1.0, 1), (0.3, 1)]
        region_span = span("qwm.region", kind=type(condition).__name__,
                           active=active)
        # Profiler frame: (solver phase, region kind) — op counts are
        # accumulated locally and flushed once at frame exit, never
        # inside the Newton iteration loop (see lint rule SOL006).
        region_phase = profile_phase(phase, tag=_CONDITION_TAGS.get(
            type(condition).__name__, "region"))
        region_start = time.perf_counter()
        attempts = 0
        reasons: List[str] = []
        failed_iterations = 0
        region_queries = 0
        with region_phase as prof, region_span, \
                accuracy_region_phase(phase):
            for scale, order in scales:
                attempts += 1
                region_iterations = 0
                guess = self._initial_guess(sources, active, tau, u, i,
                                            condition, scale)
                u_predicted = u.copy()
                u_predicted[:active] = guess[:active]
                caps = path.equivalent_caps(u, u_predicted)
                for _refine in range(2):
                    system = RegionSystem(path, sources, active, tau, u,
                                          i, condition, caps=caps,
                                          order=order)
                    trajectory = [] if rec is not None else None
                    outcome = "converged"
                    if rec is not None:
                        guess_rec = [float(v) for v in guess]
                        caps_rec = [float(c) for c in caps]
                    try:
                        result = system.newton_solve(
                            guess, options=opts.newton,
                            use_sherman_morrison=opts.use_sherman_morrison,
                            trajectory=trajectory)
                    except NewtonConvergenceError as exc:
                        result = None
                        outcome = exc.reason
                    if result is not None:
                        tau_new = float(result.x[active])
                        if not tau_new > tau:
                            result = None
                            outcome = "non_advancing_time"
                    if rec is not None:
                        rec.record(
                            "newton", solve_id=self._solve_id,
                            active=active, tau=float(tau),
                            condition=_condition_json(condition),
                            scale=scale, order=order, refine=_refine,
                            u=[float(v) for v in u],
                            i=[float(v) for v in i],
                            caps=caps_rec, guess=guess_rec,
                            trajectory=trajectory, outcome=outcome,
                            iterations=(result.iterations
                                        if result is not None
                                        else max(len(trajectory) - 1, 0)))
                    if result is None:
                        reasons.append(outcome)
                        if trajectory is not None:
                            failed_iterations += max(len(trajectory) - 1,
                                                     0)
                        break
                    u_new = u.copy()
                    u_new[:active] = np.clip(result.x[:active], -0.1,
                                             1.5 * path.vdd)
                    refined = path.equivalent_caps(u, u_new)
                    stats.newton_iterations += result.iterations
                    region_iterations += result.iterations
                    drift = np.max(np.abs(refined - caps)
                                   / np.maximum(caps, 1e-18))
                    if drift < 5e-3:
                        break
                    caps = refined
                    guess = result.x.copy()
                if meter is not None:
                    drained = meter.drain(stats)
                    region_queries += drained
                    prof.count("table_evaluations", drained)
                if result is None:
                    inc("newton.convergence.failures")
                    prof.count("newton_failures")
                    continue
                delta = tau_new - tau
                order_f = float(order)
                i_new = i.copy()
                i_new[:active] = (order_f * caps[:active]
                                  * (u_new[:active] - u[:active]) / delta
                                  - (order_f - 1.0) * i[:active])
                stats.steps += 1
                if attempts > 1:
                    inc("qwm.region.retries", attempts - 1)
                observe("qwm.newton.iterations", region_iterations)
                observe("qwm.region.wall_seconds",
                        time.perf_counter() - region_start)
                prof.count("regions")
                prof.count("newton_iterations", region_iterations)
                prof.count("attempts", attempts)
                region_span.set(iterations=region_iterations,
                                attempts=attempts, order=order)
                if rec is not None:
                    rec.record(
                        "region_solved", solve_id=self._solve_id,
                        active=active, tau=float(tau),
                        tau_new=tau_new,
                        condition=_condition_json(condition),
                        milestone=[float(v) for v in u_new[:active]],
                        order=order, attempts=attempts,
                        iterations=region_iterations,
                        table_queries=region_queries)
                return tau_new, u_new, i_new, caps, order
        if rec is not None:
            data = {"active": active, "tau": float(tau),
                    "condition": _condition_json(condition),
                    "u": [float(v) for v in u],
                    "i": [float(v) for v in i],
                    "attempts": attempts, "reasons": reasons,
                    "iterations": failed_iterations,
                    "table_queries": region_queries}
            rec.record("region_failed", solve_id=self._solve_id, **data)
            rec.note_solve_failure(self._solve_id, data)
        return None
