"""Charge/discharge path extraction from a logic stage.

Static timing analysis evaluates the *worst case*: "charging/discharging
along the longest paths" (paper Section III-C).  This module extracts
that path from a :class:`~repro.circuit.netlist.LogicStage`:

1. Build the conduction subgraph at the final input levels (transistors
   whose gates end up driving them on, plus all wires).
2. Trace the path from the output node to the pulling rail (ground for a
   falling output, the supply for a rising one).
3. Collapse runs of consecutive wire segments into AWE/O'Brien-Savarino
   π macromodels (the paper's treatment of the decoder tree's long
   wires), leaving a chain of devices and nodes.
4. Attach per-node capacitances per paper Eq. 1: the junction
   contributions of *every* incident element (on-path or not), the wire
   caps, the channel-side gate-capacitance halves, and the external
   load.

QWM then works in the *conduction frame* (frame voltage ``u = V`` for a
pull-down path, ``u = vdd - V`` for a pull-up), where every path looks
like an NMOS discharge stack: frame voltages collapse from vdd to 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.elements import DeviceKind
from repro.circuit.netlist import CircuitEdge, CircuitNode, LogicStage
from repro.devices.capacitance import wire_capacitance, wire_resistance
from repro.devices.table_model import TableDeviceModel, TableModelLibrary
from repro.interconnect.pi_model import wire_chain_pi
from repro.spice.sources import Source


@dataclass
class PathDevice:
    """One element along the extracted path, rail side first.

    Attributes:
        name: element name (π macros are named after their wire run).
        kind: NMOS/PMOS transistor or a resistive wire macro.
        gate: gate input-signal name (transistors only).
        w: width [m] (transistors only).
        l: length [m] (transistors only).
        resistance: series resistance [ohm] (wire macros only).
        table: tabular device model (transistors only).
    """

    name: str
    kind: DeviceKind
    gate: Optional[str] = None
    w: float = 0.0
    l: float = 0.0
    resistance: float = 0.0
    table: Optional[TableDeviceModel] = None

    @property
    def is_transistor(self) -> bool:
        return self.kind.is_transistor

    # ------------------------------------------------------------------
    # Frame-domain evaluation.  ``u_inner`` is the frame voltage of the
    # node on the rail side of this device, ``u_outer`` the node on the
    # output side; the returned current J flows outer -> inner (toward
    # the rail) and is positive while the path is pulling.
    # ------------------------------------------------------------------
    def frame_current(self, gate_value: float, u_inner: float,
                      u_outer: float, vdd: float
                      ) -> Tuple[float, float, float, float]:
        """Frame current and derivatives.

        Args:
            gate_value: the *actual* gate voltage at this instant [V]
                (ignored for wires).
            u_inner: frame voltage of the rail-side node.
            u_outer: frame voltage of the output-side node.
            vdd: supply (frame mirror point).

        Returns:
            ``(J, dJ_du_inner, dJ_du_outer, dJ_dgate_actual)``.
        """
        if self.kind is DeviceKind.WIRE:
            g = 1.0 / self.resistance
            return (g * (u_outer - u_inner), -g, g, 0.0)
        if self.kind is DeviceKind.NMOS:
            q = self.table.iv_query(self.w, self.l, gate_value,
                                    v_src=u_outer, v_snk=u_inner)
            return (q.ids, q.g_snk, q.g_src, q.g_gate)
        # PMOS pull-up: actual voltages are vdd - u; the frame current is
        # the actual current flowing from the rail-side (high) node into
        # the output-side node.
        q = self.table.iv_query(self.w, self.l, gate_value,
                                v_src=vdd - u_inner, v_snk=vdd - u_outer)
        return (q.ids, -q.g_src, -q.g_snk, q.g_gate)

    def frame_gate(self, gate_value: float, vdd: float) -> float:
        """Gate voltage in the conduction frame."""
        if self.kind is DeviceKind.PMOS:
            return vdd - gate_value
        return gate_value

    def frame_gate_slope_sign(self) -> float:
        """Sign mapping d(actual gate)/dt to d(frame gate)/dt."""
        return -1.0 if self.kind is DeviceKind.PMOS else 1.0

    def threshold(self, gate_value: float, u_source: float,
                  vdd: float) -> float:
        """Threshold magnitude at a frame source voltage (transistors)."""
        if self.kind is DeviceKind.NMOS:
            return self.table.threshold(gate_value, u_source, u_source)
        return self.table.threshold(gate_value, vdd - u_source,
                                    vdd - u_source)


@dataclass
class DischargePath:
    """The worst-case pull path of a stage, ready for QWM.

    Node ``k`` (1-based) sits between devices ``k`` and ``k+1``; node 0
    is the pulling rail, node K the stage output.  All voltages carried
    here are frame quantities except ``initial`` handling in the solver.

    Attributes:
        stage: originating logic stage.
        output: output node name.
        direction: ``"fall"`` or ``"rise"`` of the actual output.
        devices: K path devices, rail side first.
        node_names: K node names, rail side first (last = output).
        node_caps: K per-node full-swing equivalent capacitances [F].
        vdd: supply voltage [V].
        fixed_caps: voltage-independent part of each node cap [F]
            (loads, wire caps, gate halves).
        junctions: per node, the incident diffusion junctions as
            ``(polarity, mos_params, width)`` triples — the
            voltage-dependent part.
        gate_couplings: per node, the incident gate-coupling (Miller)
            capacitances as ``(gate_signal, cap)`` pairs.  Their static
            halves are inside ``fixed_caps``; the solver additionally
            injects the charge a *moving* gate couples in.
    """

    stage: LogicStage
    output: str
    direction: str
    devices: List[PathDevice]
    node_names: List[str]
    node_caps: np.ndarray
    vdd: float
    fixed_caps: Optional[np.ndarray] = None
    junctions: Optional[List[List[Tuple[str, object, float]]]] = None
    gate_couplings: Optional[List[List[Tuple[str, float]]]] = None

    def __post_init__(self) -> None:
        if len(self.devices) != len(self.node_names):
            raise ValueError("device/node count mismatch")
        self.node_caps = np.asarray(self.node_caps, dtype=float)
        if np.any(self.node_caps <= 0):
            raise ValueError("every path node needs positive capacitance")
        if self.fixed_caps is not None:
            self.fixed_caps = np.asarray(self.fixed_caps, dtype=float)

    def equivalent_caps(self, u_from: np.ndarray,
                        u_to: np.ndarray) -> np.ndarray:
        """Per-node equivalent capacitance over a frame-voltage span [F].

        Junction capacitance is bias dependent; the charge-equivalent
        value over the span each region actually traverses keeps QWM's
        constant-per-region capacitances faithful (the paper: "all
        parasitic capacitances are constant ... our implementation does
        not make these assumptions").  Falls back to the full-swing
        values when the path carries no junction breakdown.
        """
        if self.fixed_caps is None or self.junctions is None:
            return self.node_caps
        from repro.devices.capacitance import equivalent_junction_cap

        caps = self.fixed_caps.copy()
        for k in range(len(caps)):
            v_a = self.from_frame(float(u_from[k]))
            v_b = self.from_frame(float(u_to[k]))
            if abs(v_b - v_a) < 1e-6:
                v_b = v_a + 1e-3
            for polarity, params, width in self.junctions[k]:
                # NMOS junctions reverse-bias with the node voltage;
                # PMOS junctions sit in an n-well tied to vdd.
                if polarity == "p":
                    r_a, r_b = self.vdd - v_a, self.vdd - v_b
                else:
                    r_a, r_b = v_a, v_b
                caps[k] += abs(equivalent_junction_cap(
                    params, width, r_a, r_b))
        return caps

    @property
    def length(self) -> int:
        """K: the number of series devices (and nodes) on the path."""
        return len(self.devices)

    @property
    def transistor_count(self) -> int:
        return sum(1 for d in self.devices if d.is_transistor)

    @property
    def frame_sign(self) -> float:
        """Sign mapping actual voltage changes to frame changes."""
        return 1.0 if self.direction == "fall" else -1.0

    def coupling_injection(self, sources: Dict[str, Source],
                           t: float) -> np.ndarray:
        """Frame current injected into each node by moving gates [A].

        ``S_k = sum_m C_m * d(G_frame_m)/dt`` over the node's incident
        gate couplings; zero when the path carries no coupling data.
        """
        k = len(self.node_names)
        s = np.zeros(k)
        if self.gate_couplings is None:
            return s
        for idx, couplings in enumerate(self.gate_couplings):
            for gate, cap in couplings:
                src = sources.get(gate)
                if src is not None:
                    s[idx] += cap * self.frame_sign * src.slope(t)
        return s

    def coupling_kick(self, sources: Dict[str, Source], t: float,
                      caps: np.ndarray) -> np.ndarray:
        """Frame voltage jump caused by gate *steps* at time ``t`` [V].

        An ideal step couples ``C_m * dG`` of charge instantaneously;
        the returned per-node deltas are ``sum_m C_m dG_frame_m / C_k``.
        """
        k = len(self.node_names)
        dv = np.zeros(k)
        if self.gate_couplings is None:
            return dv
        eps = 1e-15
        for idx, couplings in enumerate(self.gate_couplings):
            for gate, cap in couplings:
                src = sources.get(gate)
                if src is None:
                    continue
                jump = src.value(t + eps) - src.value(t - eps)
                if abs(jump) > 1e-3:
                    dv[idx] += cap * self.frame_sign * jump / caps[idx]
        return dv

    def to_frame(self, v_actual: float) -> float:
        """Actual node voltage -> frame voltage."""
        return v_actual if self.direction == "fall" else self.vdd - v_actual

    def from_frame(self, u: float) -> float:
        """Frame voltage -> actual node voltage."""
        return u if self.direction == "fall" else self.vdd - u


def _final_level(source_like, t_probe: float) -> float:
    if isinstance(source_like, Source):
        return source_like.value(t_probe)
    return float(source_like)


def _is_on(edge: CircuitEdge, gate_v: float, vdd: float) -> bool:
    if edge.kind is DeviceKind.NMOS:
        return gate_v > 0.5 * vdd
    if edge.kind is DeviceKind.PMOS:
        return gate_v < 0.5 * vdd
    return True


def _trace(stage: LogicStage, start: CircuitNode, goal: CircuitNode,
           usable) -> Optional[List[Tuple[CircuitEdge, CircuitNode]]]:
    """BFS from ``start`` to ``goal``; returns [(edge, next_node), ...]."""
    from collections import deque

    queue = deque([start])
    came: Dict[str, Tuple[CircuitEdge, CircuitNode]] = {}
    seen = {start.name}
    while queue:
        node = queue.popleft()
        if node is goal:
            path: List[Tuple[CircuitEdge, CircuitNode]] = []
            cur = goal
            while cur is not start:
                edge, prev = came[cur.name]
                path.append((edge, cur))
                cur = prev
            path.reverse()
            return path
        for edge in node.edges:
            if not usable(edge):
                continue
            nxt = edge.other(node)
            if nxt.name in seen:
                continue
            # Never route through the opposite rail.
            if nxt is not goal and (nxt is stage.source or nxt is stage.sink):
                continue
            seen.add(nxt.name)
            came[nxt.name] = (edge, node)
            queue.append(nxt)
    return None


def _node_capacitance(node: CircuitNode, library: TableModelLibrary,
                      stage: LogicStage):
    """Paper Eq. 1: sum of incident-element caps plus the external load.

    Returns ``(fixed, junctions)``: the voltage-independent capacitance
    and the incident diffusion junctions as ``(polarity, params, width)``
    triples.
    """
    tech = library.tech
    fixed = node.load_cap
    junctions: List[Tuple[str, object, float]] = []
    couplings: List[Tuple[str, float]] = []
    for edge in node.edges:
        if edge.kind is DeviceKind.WIRE:
            fixed += 0.5 * wire_capacitance(tech.wire, edge.w, edge.l)
            continue
        params = tech.nmos if edge.kind is DeviceKind.NMOS else tech.pmos
        junctions.append((edge.kind.polarity, params, edge.w))
        # Channel-side half of the gate capacitance (the Miller term's
        # static part), matching the reference engine's cap accounting;
        # the dynamic part (injection from a moving gate) is recorded as
        # a coupling.
        half_gate = 0.5 * params.cox * edge.w * edge.l + params.cov * edge.w
        fixed += half_gate
        couplings.append((edge.gate_input, half_gate))
    return fixed, junctions, couplings


def extract_path(stage: LogicStage, output: str, direction: str,
                 input_levels: Dict[str, object],
                 library: TableModelLibrary,
                 t_final: float = 1.0) -> DischargePath:
    """Extract the pull path for one output transition.

    Args:
        stage: the logic stage.
        output: output node name.
        direction: ``"fall"`` (pull-down to ground) or ``"rise"``
            (pull-up to the supply).
        input_levels: gate input name -> final level (Source or float);
            the conduction subgraph is built at these levels.
        library: table-model library for device lookups.
        t_final: probe time for evaluating Source final levels [s].

    Returns:
        The extracted :class:`DischargePath`.

    Raises:
        ValueError: if no conducting path reaches the rail.
    """
    if direction not in ("fall", "rise"):
        raise ValueError("direction must be 'fall' or 'rise'")
    rail = stage.sink if direction == "fall" else stage.source
    levels = {name: _final_level(src, t_final)
              for name, src in input_levels.items()}

    def usable(edge: CircuitEdge) -> bool:
        if edge.kind is DeviceKind.WIRE:
            return True
        if edge.gate_input not in levels:
            return False
        return _is_on(edge, levels[edge.gate_input], stage.vdd)

    out_node = stage.node(output)
    hops = _trace(stage, rail, out_node, usable)
    if hops is None:
        raise ValueError(
            f"no conducting {direction} path from {output!r} to "
            f"{rail.name!r} at the given input levels")

    # Collapse consecutive wire edges into pi macromodels.
    devices: List[PathDevice] = []
    nodes: List[CircuitNode] = []
    extra_caps: Dict[str, float] = {}
    pending_wires: List[CircuitEdge] = []
    collapsed_edges: set = set()
    tech = library.tech

    def flush_wires(end_node: CircuitNode) -> None:
        if not pending_wires:
            return
        rs = [wire_resistance(tech.wire, e.w, e.l) for e in pending_wires]
        cs = [wire_capacitance(tech.wire, e.w, e.l) for e in pending_wires]
        pi = wire_chain_pi(rs, cs)
        name = "+".join(e.name for e in pending_wires)
        collapsed_edges.update(e.name for e in pending_wires)
        inner_name = nodes[-1].name if nodes else rail.name
        extra_caps[inner_name] = extra_caps.get(inner_name, 0.0) + pi.c_near
        extra_caps[end_node.name] = (extra_caps.get(end_node.name, 0.0)
                                     + pi.c_far)
        devices.append(PathDevice(name=f"pi({name})", kind=DeviceKind.WIRE,
                                  resistance=max(pi.r, 1e-3)))
        nodes.append(end_node)
        pending_wires.clear()

    for edge, nxt in hops:
        if edge.kind is DeviceKind.WIRE:
            pending_wires.append(edge)
            continue
        # A transistor hop: first flush any wire run ending at its inner
        # terminal (the node we are arriving from is already recorded).
        if pending_wires:
            inner = edge.other(nxt)
            flush_wires(inner)
        table = library.get(edge.kind.polarity, edge.l)
        devices.append(PathDevice(name=edge.name, kind=edge.kind,
                                  gate=edge.gate_input, w=edge.w, l=edge.l,
                                  table=table))
        nodes.append(nxt)
    flush_wires(out_node)

    fixed_caps = np.zeros(len(nodes))
    junctions: List[List[Tuple[str, object, float]]] = []
    couplings: List[List[Tuple[str, float]]] = []
    for i, node in enumerate(nodes):
        fixed, node_junctions, node_couplings = _node_capacitance(
            node, library, stage)
        fixed_caps[i] = fixed + extra_caps.get(node.name, 0.0)
        junctions.append(node_junctions)
        couplings.append(node_couplings)

    # Conducting side branches: a node reachable from a path node
    # through *on* off-path devices (e.g. the internal node of a
    # de-selected parallel branch whose series device still conducts)
    # tracks the path node and loads it with its full capacitance.
    path_names = {node.name for node in nodes}
    absorbed = set(path_names) | {stage.source.name, stage.sink.name}
    for i, node in enumerate(nodes):
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for edge in current.edges:
                if not usable(edge):
                    continue
                neighbor = edge.other(current)
                if neighbor.name in absorbed:
                    continue
                absorbed.add(neighbor.name)
                side_fixed, side_junctions, side_couplings = \
                    _node_capacitance(neighbor, library, stage)
                fixed_caps[i] += side_fixed
                junctions[i].extend(side_junctions)
                couplings[i].extend(side_couplings)
                frontier.append(neighbor)
        # Wire caps of collapsed runs live inside the pi end caps, but
        # the accounting above also added the half-caps of incident wire
        # edges belonging to those runs.  Remove the double count.
        for edge in node.edges:
            if (edge.kind is DeviceKind.WIRE
                    and edge.name in collapsed_edges):
                fixed_caps[i] -= 0.5 * wire_capacitance(
                    tech.wire, edge.w, edge.l)

    from repro.devices.capacitance import equivalent_junction_cap

    caps = fixed_caps.copy()
    for i, node_junctions in enumerate(junctions):
        for polarity, params, width in node_junctions:
            caps[i] += equivalent_junction_cap(params, width, 0.0, stage.vdd)

    return DischargePath(stage=stage, output=output, direction=direction,
                         devices=devices, node_names=[n.name for n in nodes],
                         node_caps=caps, vdd=stage.vdd,
                         fixed_caps=fixed_caps, junctions=junctions,
                         gate_couplings=couplings)
