"""The paper's contribution: piecewise Quadratic Waveform Matching.

QWM replaces SPICE's dense time-stepping with algebraic solves at a
handful of *critical points*.  Between critical points every node
current is modeled as linear in time — hence every node voltage as
quadratic — and the free parameters are fixed by *matching* the
capacitor currents against the tabular device model's channel currents
at the critical instants (paper Section IV).

Public entry point: :class:`~repro.core.engine.WaveformEvaluator`.

Module map:

* :mod:`repro.core.waveforms` — piecewise-quadratic waveform objects.
* :mod:`repro.core.path` — charge/discharge path extraction from a
  logic stage (with AWE π reduction of multi-segment wires).
* :mod:`repro.core.matching` — the per-region algebraic system
  (residual + bordered-tridiagonal Jacobian, paper Eq. 7/9).
* :mod:`repro.core.qwm` — the region scheduler / critical-point solver.
* :mod:`repro.core.engine` — the user-facing evaluator.
"""

from repro.core.waveforms import PiecewiseQuadraticWaveform, QuadraticPiece
from repro.core.path import DischargePath, PathDevice, extract_path
from repro.core.matching import (CrossingCondition, RegionSystem,
                                 TimeCondition, TurnOnCondition)
from repro.core.qwm import QWMOptions, QWMSolution, QWMSolver
from repro.core.engine import WaveformEvaluator

__all__ = [
    "PiecewiseQuadraticWaveform",
    "QuadraticPiece",
    "DischargePath",
    "PathDevice",
    "extract_path",
    "CrossingCondition",
    "TimeCondition",
    "RegionSystem",
    "TurnOnCondition",
    "QWMOptions",
    "QWMSolution",
    "QWMSolver",
    "WaveformEvaluator",
]
